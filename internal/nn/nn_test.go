package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// scalarLoss projects a tensor onto fixed pseudo-random coefficients so we
// can gradient-check any module against a scalar objective.
func scalarLoss(t *tensor.Tensor, coeff []float32) float64 {
	var s float64
	for i, v := range t.Data {
		s += float64(v) * float64(coeff[i%len(coeff)])
	}
	return s
}

func lossGrad(t *tensor.Tensor, coeff []float32) *tensor.Tensor {
	g := tensor.New(t.Shape...)
	for i := range g.Data {
		g.Data[i] = coeff[i%len(coeff)]
	}
	return g
}

// gradCheck verifies the analytic input gradient of a module against
// central finite differences.
func gradCheck(t *testing.T, m Module, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := tensor.NewRNG(99)
	coeff := make([]float32, 13)
	for i := range coeff {
		coeff[i] = float32(rng.Normal())
	}
	out := m.Forward(x, true)
	dX := m.Backward(lossGrad(out, coeff))

	const eps = 1e-3
	for _, idx := range []int{0, x.Len() / 3, x.Len() - 1} {
		orig := x.Data[idx]
		x.Data[idx] = orig + eps
		lp := scalarLoss(m.Forward(x, true), coeff)
		m.Backward(lossGrad(m.Forward(x, true), coeff)) // clear cached state
		x.Data[idx] = orig - eps
		lm := scalarLoss(m.Forward(x, true), coeff)
		m.Backward(lossGrad(m.Forward(x, true), coeff))
		x.Data[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(dX.Data[idx])
		if math.Abs(numeric-analytic) > tol*(math.Abs(numeric)+math.Abs(analytic)+1e-2) {
			t.Fatalf("grad mismatch at %d: numeric %v analytic %v", idx, numeric, analytic)
		}
	}
}

// paramGradCheck verifies a parameter gradient by finite differences.
func paramGradCheck(t *testing.T, m Module, x *tensor.Tensor, p *Param, tol float64) {
	t.Helper()
	rng := tensor.NewRNG(17)
	coeff := make([]float32, 11)
	for i := range coeff {
		coeff[i] = float32(rng.Normal())
	}
	p.ZeroGrad()
	out := m.Forward(x, true)
	m.Backward(lossGrad(out, coeff))
	analyticGrad := p.Grad.Clone() // later probe passes keep accumulating

	const eps = 1e-3
	for _, idx := range []int{0, p.W.Len() / 2, p.W.Len() - 1} {
		orig := p.W.Data[idx]
		p.W.Data[idx] = orig + eps
		lp := scalarLoss(m.Forward(x, true), coeff)
		m.Backward(lossGrad(m.Forward(x, true), coeff))
		p.W.Data[idx] = orig - eps
		lm := scalarLoss(m.Forward(x, true), coeff)
		m.Backward(lossGrad(m.Forward(x, true), coeff))
		p.W.Data[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(analyticGrad.Data[idx])
		if math.Abs(numeric-analytic) > tol*(math.Abs(numeric)+math.Abs(analytic)+1e-2) {
			t.Fatalf("param grad mismatch at %d: numeric %v analytic %v", idx, numeric, analytic)
		}
	}
}

func TestConv2DForwardKnown(t *testing.T) {
	rng := tensor.NewRNG(1)
	c := NewConv2D("c", 1, 1, 3, 1, 1, true, rng)
	// Identity kernel: 1 at center.
	c.Weight.W.Zero()
	c.Weight.W.Data[4] = 1
	c.Bias.W.Data[0] = 0.5
	x := tensor.New(1, 1, 2, 2)
	x.Data = []float32{1, 2, 3, 4}
	out := c.Forward(x, false)
	want := []float32{1.5, 2.5, 3.5, 4.5}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("conv out = %v, want %v", out.Data, want)
		}
	}
}

func TestConv2DShapes(t *testing.T) {
	rng := tensor.NewRNG(2)
	c := NewConv2D("c", 3, 8, 3, 2, 1, false, rng)
	x := tensor.New(2, 3, 32, 32)
	out := c.Forward(x, false)
	if out.Shape[0] != 2 || out.Shape[1] != 8 || out.Shape[2] != 16 || out.Shape[3] != 16 {
		t.Fatalf("conv output shape %v", out.Shape)
	}
}

func TestConv2DGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	c := NewConv2D("c", 2, 3, 3, 1, 1, true, rng)
	x := tensor.New(2, 2, 5, 5)
	rng.FillNormal(x, 0, 1)
	gradCheck(t, c, x, 0.02)
	paramGradCheck(t, c, x, c.Weight, 0.02)
	paramGradCheck(t, c, x, c.Bias, 0.02)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	c := NewConv2D("c", 2, 2, 3, 2, 1, false, rng)
	x := tensor.New(1, 2, 6, 6)
	rng.FillNormal(x, 0, 1)
	gradCheck(t, c, x, 0.02)
}

func TestBatchNormTrainStats(t *testing.T) {
	bn := NewBatchNorm2D("bn", 2)
	rng := tensor.NewRNG(5)
	x := tensor.New(4, 2, 6, 6)
	rng.FillNormal(x, 3, 2)
	out := bn.Forward(x, true)
	// Per-channel output should be ~N(0,1) (gamma=1, beta=0).
	for ch := 0; ch < 2; ch++ {
		var sum, sq float64
		cnt := 0
		for s := 0; s < 4; s++ {
			for i := 0; i < 36; i++ {
				v := float64(out.At4(s, ch, i/6, i%6))
				sum += v
				sq += v * v
				cnt++
			}
		}
		mean := sum / float64(cnt)
		vr := sq/float64(cnt) - mean*mean
		if math.Abs(mean) > 1e-4 || math.Abs(vr-1) > 1e-3 {
			t.Fatalf("BN ch%d mean %v var %v", ch, mean, vr)
		}
	}
}

func TestBatchNormGradients(t *testing.T) {
	bn := NewBatchNorm2D("bn", 2)
	rng := tensor.NewRNG(6)
	bn.Gamma.W.Data[0] = 1.3
	bn.Beta.W.Data[1] = -0.4
	x := tensor.New(3, 2, 4, 4)
	rng.FillNormal(x, 0, 1)
	gradCheck(t, bn, x, 0.05)
	paramGradCheck(t, bn, x, bn.Gamma, 0.05)
	paramGradCheck(t, bn, x, bn.Beta, 0.05)
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm2D("bn", 1)
	bn.RunningMean.Data[0] = 2
	bn.RunningVar.Data[0] = 4
	x := tensor.New(1, 1, 1, 2)
	x.Data = []float32{2, 6}
	out := bn.Forward(x, false)
	// (2-2)/2=0, (6-2)/2=2 (eps tiny)
	if math.Abs(float64(out.Data[0])) > 1e-3 || math.Abs(float64(out.Data[1])-2) > 1e-3 {
		t.Fatalf("BN inference out %v", out.Data)
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU("r")
	x := tensor.NewFrom([]float32{-1, 0, 2}, 1, 3)
	out := r.Forward(x, true)
	if out.Data[0] != 0 || out.Data[2] != 2 {
		t.Fatalf("ReLU out %v", out.Data)
	}
	g := tensor.NewFrom([]float32{5, 5, 5}, 1, 3)
	dx := r.Backward(g)
	if dx.Data[0] != 0 || dx.Data[1] != 0 || dx.Data[2] != 5 {
		t.Fatalf("ReLU grad %v", dx.Data)
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2D("p", 2, 2)
	x := tensor.New(1, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	out := p.Forward(x, true)
	want := []float32{5, 7, 13, 15}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("maxpool out %v", out.Data)
		}
	}
	g := tensor.NewFrom([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	dx := p.Backward(g)
	if dx.Data[5] != 1 || dx.Data[7] != 2 || dx.Data[13] != 3 || dx.Data[15] != 4 {
		t.Fatalf("maxpool grad %v", dx.Data)
	}
	var nz int
	for _, v := range dx.Data {
		if v != 0 {
			nz++
		}
	}
	if nz != 4 {
		t.Fatalf("maxpool grad should route only to argmax cells, got %d nonzero", nz)
	}
}

func TestAvgPoolGradients(t *testing.T) {
	p := NewAvgPool2D("p", 2, 2)
	rng := tensor.NewRNG(8)
	x := tensor.New(1, 2, 4, 4)
	rng.FillNormal(x, 0, 1)
	gradCheck(t, p, x, 0.01)
}

func TestGlobalAvgPool(t *testing.T) {
	p := NewGlobalAvgPool2D("g")
	x := tensor.New(2, 2, 2, 2)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	out := p.Forward(x, true)
	if out.Shape[0] != 2 || out.Shape[1] != 2 {
		t.Fatalf("gap shape %v", out.Shape)
	}
	if out.Data[0] != 1.5 || out.Data[1] != 5.5 {
		t.Fatalf("gap out %v", out.Data)
	}
	gradCheck(t, p, x, 0.01)
}

func TestLinearGradients(t *testing.T) {
	rng := tensor.NewRNG(9)
	l := NewLinear("fc", 6, 4, rng)
	x := tensor.New(3, 6)
	rng.FillNormal(x, 0, 1)
	gradCheck(t, l, x, 0.02)
	paramGradCheck(t, l, x, l.Weight, 0.02)
	paramGradCheck(t, l, x, l.Bias, 0.02)
}

func TestSoftmaxCE(t *testing.T) {
	logits := tensor.NewFrom([]float32{10, 0, 0, 0, 10, 0}, 2, 3)
	loss, grad := SoftmaxCE(logits, []int{0, 1})
	if loss > 0.01 {
		t.Fatalf("confident correct logits should have near-zero loss, got %v", loss)
	}
	// Gradient rows must sum to 0.
	for s := 0; s < 2; s++ {
		var sum float64
		for j := 0; j < 3; j++ {
			sum += float64(grad.Data[s*3+j])
		}
		if math.Abs(sum) > 1e-5 {
			t.Fatalf("grad row %d sums to %v", s, sum)
		}
	}
	lossBad, _ := SoftmaxCE(logits, []int{1, 0})
	if lossBad < 5 {
		t.Fatalf("wrong labels should have high loss, got %v", lossBad)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := tensor.NewRNG(10)
	logits := tensor.New(4, 7)
	rng.FillNormal(logits, 0, 3)
	p := Softmax(logits)
	for s := 0; s < 4; s++ {
		var sum float64
		for j := 0; j < 7; j++ {
			v := p.Data[s*7+j]
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("softmax row sums to %v", sum)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.NewFrom([]float32{1, 0, 0, 1}, 2, 2)
	if a := Accuracy(logits, []int{0, 1}); a != 1 {
		t.Fatalf("accuracy %v, want 1", a)
	}
	if a := Accuracy(logits, []int{1, 1}); a != 0.5 {
		t.Fatalf("accuracy %v, want 0.5", a)
	}
}

func TestResidualIdentity(t *testing.T) {
	rng := tensor.NewRNG(11)
	body := NewConv2D("b", 2, 2, 3, 1, 1, false, rng)
	body.Weight.W.Zero() // body contributes nothing
	r := NewResidual("res", body, nil, false)
	x := tensor.New(1, 2, 4, 4)
	rng.FillNormal(x, 0, 1)
	out := r.Forward(x, false)
	for i := range x.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatal("zero-body residual must be identity")
		}
	}
}

func TestResidualGradients(t *testing.T) {
	rng := tensor.NewRNG(12)
	body := NewSequential("body",
		NewConv2D("b1", 2, 2, 3, 1, 1, true, rng),
		NewReLU("r1"),
		NewConv2D("b2", 2, 2, 3, 1, 1, true, rng),
	)
	sc := NewConv2D("sc", 2, 2, 1, 1, 0, false, rng)
	r := NewResidual("res", body, sc, true)
	x := tensor.New(1, 2, 4, 4)
	rng.FillNormal(x, 0, 1)
	gradCheck(t, r, x, 0.03)
}

func TestConcatChannelsRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(13)
	a := tensor.New(2, 3, 4, 4)
	b := tensor.New(2, 5, 4, 4)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	cat := ConcatChannels(a, b)
	if cat.Shape[1] != 8 {
		t.Fatalf("concat channels %v", cat.Shape)
	}
	a2, b2 := SplitChannels(cat, 3)
	if tensor.MaxAbsDiff(a, a2) != 0 || tensor.MaxAbsDiff(b, b2) != 0 {
		t.Fatal("split(concat) must round-trip")
	}
}

func TestConcatGrowthGradients(t *testing.T) {
	rng := tensor.NewRNG(14)
	body := NewConv2D("g", 2, 3, 3, 1, 1, true, rng)
	d := NewConcatGrowth("dense", body)
	x := tensor.New(1, 2, 4, 4)
	rng.FillNormal(x, 0, 1)
	out := d.Forward(x, true)
	if out.Shape[1] != 5 {
		t.Fatalf("growth output channels %v", out.Shape)
	}
	gradCheck(t, d, x, 0.03)
}

func TestSequentialComposition(t *testing.T) {
	rng := tensor.NewRNG(15)
	seq := NewSequential("net",
		NewConv2D("c1", 1, 4, 3, 1, 1, false, rng),
		NewBatchNorm2D("bn1", 4),
		NewReLU("r1"),
		NewGlobalAvgPool2D("gap"),
		NewLinear("fc", 4, 3, rng),
	)
	x := tensor.New(2, 1, 8, 8)
	rng.FillNormal(x, 0, 1)
	out := seq.Forward(x, false)
	if out.Shape[0] != 2 || out.Shape[1] != 3 {
		t.Fatalf("sequential output %v", out.Shape)
	}
	if got := len(seq.Params()); got != 5 { // conv w, bn gamma/beta, fc w/b
		t.Fatalf("param count %d", got)
	}
}

func TestConvsVisitOrder(t *testing.T) {
	rng := tensor.NewRNG(16)
	inner := NewSequential("inner", NewConv2D("c2", 4, 4, 3, 1, 1, false, rng))
	seq := NewSequential("net",
		NewConv2D("c1", 1, 4, 3, 1, 1, false, rng),
		NewResidual("res", inner, nil, false),
	)
	convs := Convs(seq)
	if len(convs) != 2 || convs[0].Name != "c1" || convs[1].Name != "c2" {
		t.Fatalf("Convs order wrong: %v", convs)
	}
}

func TestFoldBatchNorms(t *testing.T) {
	rng := tensor.NewRNG(17)
	conv := NewConv2D("c", 2, 3, 3, 1, 1, false, rng)
	bn := NewBatchNorm2D("bn", 3)
	// Give BN nontrivial inference parameters.
	bn.RunningMean.Data = []float32{0.3, -0.2, 0.1}
	bn.RunningVar.Data = []float32{1.5, 0.7, 2.2}
	bn.Gamma.W.Data = []float32{1.1, 0.9, 1.3}
	bn.Beta.W.Data = []float32{0.05, -0.03, 0.2}
	seq := NewSequential("net", conv, bn)

	x := tensor.New(2, 2, 6, 6)
	rng.FillNormal(x, 0, 1)
	before := seq.Forward(x, false)

	if folds := FoldBatchNorms(seq); folds != 1 {
		t.Fatalf("folds = %d, want 1", folds)
	}
	after := seq.Forward(x, false)
	if d := tensor.MaxAbsDiff(before, after); d > 1e-4 {
		t.Fatalf("folding changed inference output by %v", d)
	}
	if conv.Bias == nil {
		t.Fatal("folding must materialize a conv bias")
	}
}

type captureExec struct{ called int }

func (e *captureExec) Conv(x *tensor.Tensor, l *Conv2D) *tensor.Tensor {
	e.called++
	g := l.Geom(x.Shape[2], x.Shape[3])
	return tensor.New(x.Shape[0], g.OutC, g.OutH, g.OutW)
}

func TestConvExecutorHook(t *testing.T) {
	rng := tensor.NewRNG(18)
	seq := NewSequential("net",
		NewConv2D("c1", 1, 2, 3, 1, 1, false, rng),
		NewConv2D("c2", 2, 2, 3, 1, 1, false, rng),
	)
	exec := &captureExec{}
	SetConvExec(seq, exec)
	x := tensor.New(1, 1, 4, 4)
	seq.Forward(x, false)
	if exec.called != 2 {
		t.Fatalf("executor called %d times, want 2", exec.called)
	}
	// Training must bypass the executor.
	seq.Forward(x, true)
	if exec.called != 2 {
		t.Fatal("executor must not run during training")
	}
	SetConvExec(seq, nil)
	seq.Forward(x, false)
	if exec.called != 2 {
		t.Fatal("nil executor must restore the float path")
	}
}
