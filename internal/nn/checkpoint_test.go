package nn

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/tensor"
)

func smallNet(seed int64) *Sequential {
	rng := tensor.NewRNG(seed)
	return NewSequential("net",
		NewConv2D("c1", 1, 4, 3, 1, 1, true, rng),
		NewBatchNorm2D("bn1", 4),
		NewReLU("r1"),
		NewGlobalAvgPool2D("gap"),
		NewLinear("fc", 4, 3, rng),
	)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := smallNet(1)
	// Give BN nontrivial stats.
	src.Modules[1].(*BatchNorm2D).RunningMean.Data[2] = 0.7
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}

	dst := smallNet(99) // different init
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}

	x := tensor.New(2, 1, 8, 8)
	tensor.NewRNG(3).FillUniform(x, 0, 1)
	a := src.Forward(x, false)
	b := dst.Forward(x, false)
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("loaded model must reproduce source outputs exactly")
	}
}

func TestLoadArchMismatch(t *testing.T) {
	src := smallNet(1)
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(2)
	other := NewSequential("other", NewLinear("fc", 4, 3, rng))
	if err := Load(&buf, other); err == nil {
		t.Fatal("mismatched architecture must fail to load")
	}
}

func TestLoadGarbage(t *testing.T) {
	if err := Load(bytes.NewBufferString("not a checkpoint"), smallNet(1)); err == nil {
		t.Fatal("garbage input must error")
	}
}

// TestDuplicateParamNamesRejected: two layers sharing a name would
// silently overwrite each other in the state map — Save and Load must
// refuse rather than produce a checkpoint that restores wrong weights.
func TestDuplicateParamNamesRejected(t *testing.T) {
	rng := tensor.NewRNG(1)
	clash := NewSequential("net",
		NewLinear("fc", 4, 4, rng),
		NewReLU("r"),
		NewLinear("fc", 4, 3, rng), // same name as the first Linear
	)
	if _, err := StateTensors(clash); err == nil {
		t.Fatal("StateTensors must reject duplicate parameter names")
	}
	if err := Save(&bytes.Buffer{}, clash); err == nil {
		t.Fatal("Save must reject duplicate parameter names")
	}
	var buf bytes.Buffer
	if err := Save(&buf, smallNet(1)); err != nil {
		t.Fatal(err)
	}
	if err := Load(&buf, clash); err == nil {
		t.Fatal("Load into a module with duplicate names must error")
	}
}

// TestLoadV1Gob: checkpoints written by the pre-v2 gob format must
// still load (read-only compatibility), reproducing outputs exactly.
func TestLoadV1Gob(t *testing.T) {
	src := smallNet(4)
	state, err := StateTensors(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = gob.NewEncoder(&buf).Encode(&struct {
		Version int
		Tensors map[string][]float32
	}{Version: 1, Tensors: state})
	if err != nil {
		t.Fatal(err)
	}

	dst := smallNet(77)
	if err := Load(&buf, dst); err != nil {
		t.Fatalf("v1 gob checkpoint must still load: %v", err)
	}
	x := tensor.New(2, 1, 8, 8)
	tensor.NewRNG(3).FillUniform(x, 0, 1)
	if tensor.MaxAbsDiff(src.Forward(x, false), dst.Forward(x, false)) != 0 {
		t.Fatal("v1-loaded model must reproduce source outputs exactly")
	}
}
