package nn

import (
	"bytes"
	"testing"

	"repro/internal/tensor"
)

func smallNet(seed int64) *Sequential {
	rng := tensor.NewRNG(seed)
	return NewSequential("net",
		NewConv2D("c1", 1, 4, 3, 1, 1, true, rng),
		NewBatchNorm2D("bn1", 4),
		NewReLU("r1"),
		NewGlobalAvgPool2D("gap"),
		NewLinear("fc", 4, 3, rng),
	)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := smallNet(1)
	// Give BN nontrivial stats.
	src.Modules[1].(*BatchNorm2D).RunningMean.Data[2] = 0.7
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}

	dst := smallNet(99) // different init
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}

	x := tensor.New(2, 1, 8, 8)
	tensor.NewRNG(3).FillUniform(x, 0, 1)
	a := src.Forward(x, false)
	b := dst.Forward(x, false)
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("loaded model must reproduce source outputs exactly")
	}
}

func TestLoadArchMismatch(t *testing.T) {
	src := smallNet(1)
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(2)
	other := NewSequential("other", NewLinear("fc", 4, 3, rng))
	if err := Load(&buf, other); err == nil {
		t.Fatal("mismatched architecture must fail to load")
	}
}

func TestLoadGarbage(t *testing.T) {
	if err := Load(bytes.NewBufferString("not a checkpoint"), smallNet(1)); err == nil {
		t.Fatal("garbage input must error")
	}
}
