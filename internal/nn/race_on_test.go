//go:build race

package nn

// raceEnabled reports whether the race detector is active. The allocation
// assertions are skipped under -race: the race runtime makes sync.Pool
// intentionally lossy and inflates every allocation, so byte-count bounds
// measure the instrumentation, not the code.
const raceEnabled = true
