package nn

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// Property-based invariants of the layer algebra.

// Convolution is linear: conv(a+b) == conv(a) + conv(b).
func TestConvLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		c := NewConv2D("c", 2, 3, 3, 1, 1, false, rng)
		a := tensor.New(1, 2, 6, 6)
		b := tensor.New(1, 2, 6, 6)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(b, 0, 1)

		sum := a.Clone()
		sum.Add(b)
		lhs := c.Forward(sum, false)
		rhs := c.Forward(a, false)
		rhs.Add(c.Forward(b, false))
		return tensor.MaxAbsDiff(lhs, rhs) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Convolution commutes with scaling: conv(k·x) == k·conv(x).
func TestConvHomogeneityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		c := NewConv2D("c", 2, 2, 3, 1, 1, false, rng)
		x := tensor.New(1, 2, 5, 5)
		rng.FillNormal(x, 0, 1)
		k := float32(1 + rng.Float32()*3)

		scaled := x.Clone()
		scaled.Scale(k)
		lhs := c.Forward(scaled, false)
		rhs := c.Forward(x, false)
		rhs.Scale(k)
		return tensor.MaxAbsDiff(lhs, rhs) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// ReLU is idempotent: relu(relu(x)) == relu(x).
func TestReLUIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		r := NewReLU("r")
		x := tensor.New(1, 40)
		rng.FillNormal(x, 0, 2)
		once := r.Forward(x, false)
		twice := r.Forward(once, false)
		return tensor.MaxAbsDiff(once, twice) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// MaxPool dominates AvgPool pointwise on the same window.
func TestMaxDominatesAvgProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		mx := NewMaxPool2D("m", 2, 2)
		av := NewAvgPool2D("a", 2, 2)
		x := tensor.New(1, 2, 6, 6)
		rng.FillNormal(x, 0, 1)
		m := mx.Forward(x, false)
		a := av.Forward(x, false)
		for i := range m.Data {
			if m.Data[i] < a.Data[i]-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Softmax is invariant to constant logit shifts.
func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		logits := tensor.New(2, 5)
		rng.FillNormal(logits, 0, 3)
		p1 := Softmax(logits)
		shifted := logits.Clone()
		for i := range shifted.Data {
			shifted.Data[i] += 7.5
		}
		p2 := Softmax(shifted)
		return tensor.MaxAbsDiff(p1, p2) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Save/Load round-trips arbitrary trained state.
func TestCheckpointProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := smallNet(seed)
		dst := smallNet(seed + 1000)
		var buf bytes.Buffer
		if err := Save(&buf, src); err != nil {
			return false
		}
		if err := Load(&buf, dst); err != nil {
			return false
		}
		x := tensor.New(1, 1, 8, 8)
		tensor.NewRNG(seed+7).FillUniform(x, 0, 1)
		return tensor.MaxAbsDiff(src.Forward(x, false), dst.Forward(x, false)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
