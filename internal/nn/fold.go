package nn

// FoldBatchNorms scans the module tree for Conv2D layers immediately
// followed by BatchNorm2D layers inside Sequential containers and folds
// the batch-norm transform into the convolution. Quantized executors can
// then treat each conv as a single affine stage, matching how deployed
// accelerators consume trained models.
//
// It returns the number of folds performed.
func FoldBatchNorms(m Module) int {
	folds := 0
	m.Visit(func(mod Module) {
		seq, ok := mod.(*Sequential)
		if !ok {
			return
		}
		for i := 0; i+1 < len(seq.Modules); i++ {
			conv, okC := seq.Modules[i].(*Conv2D)
			bn, okB := seq.Modules[i+1].(*BatchNorm2D)
			if okC && okB {
				bn.FoldInto(conv)
				folds++
			}
		}
	})
	return folds
}
