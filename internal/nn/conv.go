package nn

import (
	"fmt"

	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// FakeQuant is a straight-through fake quantizer used for quantization-
// aware training: Forward maps a float tensor onto its quantized grid,
// Backward implements the straight-through gradient (possibly masked by
// the clamping range).
type FakeQuant interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(grad, x *tensor.Tensor) *tensor.Tensor
}

// ConvExecutor overrides the inference-time convolution arithmetic of a
// Conv2D. Quantization schemes (static INT-k, DRQ, ODQ) implement this to
// run integer arithmetic while leaving the network structure untouched.
// The executor receives the float input (post any previous layer) and the
// layer itself, and must return the float-domain output (pre-bias; the
// layer adds its bias afterwards).
type ConvExecutor interface {
	Conv(x *tensor.Tensor, layer *Conv2D) *tensor.Tensor
}

// Conv2D is a 2-D convolution with optional bias and optional fake
// quantization of weights and input activations (DoReFa-style QAT).
type Conv2D struct {
	Name           string
	InC, OutC      int
	K, Stride, Pad int
	Weight         *Param // [OutC, InC, K, K]
	Bias           *Param // [OutC] or nil
	WeightQuant    FakeQuant
	ActQuant       FakeQuant
	Exec           ConvExecutor // nil → default float path
	// DisableActQuant skips activation fake-quant; used for the first
	// layer which consumes raw images (standard DoReFa practice).
	DisableActQuant bool
	// QuantRelaxed temporarily bypasses the fake quantizers (float
	// warm-up phase of quantization-aware training).
	QuantRelaxed bool
	// TrainExec, when set, substitutes the executor's output for the
	// forward value during training while gradients flow through the
	// standard (fake-quantized) convolution — a straight-through
	// estimator. This is how threshold-aware retraining (ODQ §3) teaches
	// the network to tolerate predictor-only insensitive outputs.
	TrainExec ConvExecutor

	// Cached forward state for backward.
	inX   *tensor.Tensor // pre-quantization input
	qX    *tensor.Tensor // post-activation-quant input actually convolved
	qW    *tensor.Tensor // post-weight-quant weights actually convolved
	geomN tensor.ConvGeom
	colsB [][]float32 // per-sample im2col buffers cached for backward
}

// NewConv2D builds a convolution layer. bias toggles the additive bias.
func NewConv2D(name string, inC, outC, k, stride, pad int, bias bool, rng *tensor.RNG) *Conv2D {
	w := tensor.New(outC, inC, k, k)
	rng.KaimingConv(w)
	c := &Conv2D{
		Name: name, InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		Weight: NewParam(name+".weight", w, true),
	}
	if bias {
		c.Bias = NewParam(name+".bias", tensor.New(outC), false)
	}
	return c
}

// Geom returns the convolution geometry for an input of h×w.
func (c *Conv2D) Geom(h, w int) tensor.ConvGeom {
	return tensor.Geometry(c.InC, h, w, c.OutC, c.K, c.Stride, c.Pad)
}

// EffectiveWeight returns the weights the layer actually convolves with:
// fake-quantized if a WeightQuant is installed (and not relaxed), raw
// otherwise.
func (c *Conv2D) EffectiveWeight() *tensor.Tensor {
	if c.WeightQuant != nil && !c.QuantRelaxed {
		return c.WeightQuant.Forward(c.Weight.W)
	}
	return c.Weight.W
}

// Forward implements Module.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	sp := telemetry.StartSpan("nn.conv.forward")
	defer sp.End()
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s expects NCHW input, got %v", c.Name, x.Shape))
	}
	if x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: %s expects %d input channels, got %d", c.Name, c.InC, x.Shape[1]))
	}
	qx := x
	if c.ActQuant != nil && !c.DisableActQuant && !c.QuantRelaxed {
		qx = c.ActQuant.Forward(x)
	}
	qw := c.EffectiveWeight()

	if c.Exec != nil && !train {
		out := c.Exec.Conv(x, c)
		c.addBias(out)
		return out
	}

	n := x.Shape[0]
	g := c.Geom(x.Shape[2], x.Shape[3])
	out := tensor.New(n, g.OutC, g.OutH, g.OutW)
	rows, cols := g.ColRows(), g.ColCols()
	if train {
		c.inX = x
		c.qX = qx
		c.qW = qw
		c.geomN = g
		c.colsB = make([][]float32, n)
	}
	per := c.InC * g.InH * g.InW
	// The bias rides along as a GEMM epilogue (row initialization) unless
	// a TrainExec will replace this output, in which case the bias must be
	// added to the substituted value instead.
	foldBias := c.Bias != nil && !(train && c.TrainExec != nil)
	// Samples are independent: fan the per-sample im2col+GEMM out on the
	// shared worker pool with pooled scratch. In training mode the im2col
	// buffers are retained for Backward (which recycles them).
	tensor.DefaultPool().ParallelN(n, func(s int) {
		cb := tensor.GetFloat32(rows * cols)
		tensor.Im2col(qx.Data[s*per:(s+1)*per], g, cb)
		outS := out.Data[s*g.OutC*cols : (s+1)*g.OutC*cols]
		if foldBias {
			tensor.GemmBiasRow(qw.Data, cb, outS, c.Bias.W.Data, g.OutC, rows, cols)
		} else {
			tensor.Gemm(qw.Data, cb, outS, g.OutC, rows, cols)
		}
		if train {
			c.colsB[s] = cb
		} else {
			tensor.PutFloat32(cb)
		}
	})
	if train && c.TrainExec != nil {
		// Straight-through: forward the executor's value; the cached
		// state above keeps gradients flowing through the plain conv.
		out = c.TrainExec.Conv(x, c)
		c.addBias(out)
	}
	return out
}

func (c *Conv2D) addBias(out *tensor.Tensor) {
	if c.Bias == nil {
		return
	}
	n, oc := out.Shape[0], out.Shape[1]
	hw := out.Shape[2] * out.Shape[3]
	for s := 0; s < n; s++ {
		for o := 0; o < oc; o++ {
			b := c.Bias.W.Data[o]
			base := (s*oc + o) * hw
			for i := 0; i < hw; i++ {
				out.Data[base+i] += b
			}
		}
	}
}

// Backward implements Module. Straight-through estimation: gradients flow
// to the unquantized weights/activations through the fake quantizers.
//
// Samples run in parallel on the shared worker pool: each computes its
// weight-gradient contribution into pooled scratch (reduced serially in
// sample order afterwards, so results stay deterministic regardless of
// worker count) and scatters its input gradient into a disjoint slice of
// dX. The transpose buffers of the seed implementation are gone — GemmNT
// and GemmTN absorb both transposes in their packing pass.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	sp := telemetry.StartSpan("nn.conv.backward")
	defer sp.End()
	if c.colsB == nil {
		panic("nn: Conv2D.Backward without cached forward")
	}
	g := c.geomN
	n := grad.Shape[0]
	rows, cols := g.ColRows(), g.ColCols()
	dX := tensor.New(c.inX.Shape...)
	per := c.InC * g.InH * g.InW

	if c.Bias != nil {
		hw := g.OutH * g.OutW
		for s := 0; s < n; s++ {
			for o := 0; o < g.OutC; o++ {
				var sum float32
				base := (s*g.OutC + o) * hw
				for i := 0; i < hw; i++ {
					sum += grad.Data[base+i]
				}
				c.Bias.Grad.Data[o] += sum
			}
		}
	}

	dWs := make([][]float32, n)
	tensor.DefaultPool().ParallelN(n, func(s int) {
		gs := grad.Data[s*g.OutC*cols : (s+1)*g.OutC*cols]
		// dW_s = gs · colsᵀ  (OutC×cols · cols×rows), transpose absorbed
		// by GemmNT packing.
		dw := tensor.GetFloat32(g.OutC * rows)
		for i := range dw {
			dw[i] = 0
		}
		tensor.GemmNT(gs, c.colsB[s], dw, g.OutC, cols, rows)
		dWs[s] = dw
		// dCols = Wᵀ · gs  (rows×OutC · OutC×cols), transpose absorbed by
		// GemmTN packing.
		dCols := tensor.GetFloat32(rows * cols)
		for i := range dCols {
			dCols[i] = 0
		}
		tensor.GemmTN(c.qW.Data, gs, dCols, rows, g.OutC, cols)
		tensor.Col2im(dCols, g, dX.Data[s*per:(s+1)*per])
		tensor.PutFloat32(dCols)
		tensor.PutFloat32(c.colsB[s])
		c.colsB[s] = nil
	})
	wg := c.Weight.Grad.Data[:g.OutC*rows]
	for s := 0; s < n; s++ {
		dw := dWs[s]
		for i := range wg {
			wg[i] += dw[i]
		}
		tensor.PutFloat32(dw)
	}

	if c.ActQuant != nil && !c.DisableActQuant && !c.QuantRelaxed {
		dX = c.ActQuant.Backward(dX, c.inX)
	}
	c.colsB = nil
	return dX
}

// Params implements Module.
func (c *Conv2D) Params() []*Param {
	if c.Bias != nil {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}

// Visit implements Module.
func (c *Conv2D) Visit(f func(Module)) { f(c) }
