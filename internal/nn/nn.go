// Package nn implements the neural-network layers, composite modules and
// backpropagation used as the substrate for the ODQ reproduction. Modules
// operate on NCHW float32 tensors; quantized inference is layered on top by
// installing ConvExecutor implementations on Conv2D layers.
package nn

import "repro/internal/tensor"

// Param is a trainable parameter with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
	// Decay marks whether weight decay applies (biases and BN affine
	// parameters conventionally opt out).
	Decay bool
}

// NewParam allocates a parameter plus matching gradient buffer.
func NewParam(name string, w *tensor.Tensor, decay bool) *Param {
	return &Param{Name: name, W: w, Grad: tensor.New(w.Shape...), Decay: decay}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Module is a node of the network graph. Forward must cache whatever state
// Backward needs; Backward receives dL/d(output) and returns dL/d(input).
type Module interface {
	// Forward runs the module. train toggles behaviours such as
	// batch-norm statistics updates and backward-state caching.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates the output gradient to the input gradient,
	// accumulating parameter gradients along the way. Must follow a
	// Forward with train=true.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns all trainable parameters in the subtree.
	Params() []*Param
	// Visit walks the subtree depth-first, calling f on every module
	// (including composites and self).
	Visit(f func(Module))
}

// Sequential chains modules output-to-input.
type Sequential struct {
	Name    string
	Modules []Module
}

// NewSequential builds a sequential container.
func NewSequential(name string, mods ...Module) *Sequential {
	return &Sequential{Name: name, Modules: mods}
}

// Append adds modules to the end of the chain.
func (s *Sequential) Append(mods ...Module) { s.Modules = append(s.Modules, mods...) }

// Forward implements Module.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, m := range s.Modules {
		x = m.Forward(x, train)
	}
	return x
}

// Backward implements Module.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Modules) - 1; i >= 0; i-- {
		grad = s.Modules[i].Backward(grad)
	}
	return grad
}

// Params implements Module.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, m := range s.Modules {
		ps = append(ps, m.Params()...)
	}
	return ps
}

// Visit implements Module.
func (s *Sequential) Visit(f func(Module)) {
	f(s)
	for _, m := range s.Modules {
		m.Visit(f)
	}
}

// Residual computes Body(x) + Shortcut(x); Shortcut may be nil for an
// identity skip. Backward fans the gradient into both branches.
type Residual struct {
	Name     string
	Body     Module
	Shortcut Module // nil means identity
	// PostReLU applies ReLU after the addition (standard ResNet blocks).
	PostReLU bool

	sum *tensor.Tensor // cached pre-ReLU sum for backward
}

// NewResidual builds a residual block.
func NewResidual(name string, body, shortcut Module, postReLU bool) *Residual {
	return &Residual{Name: name, Body: body, Shortcut: shortcut, PostReLU: postReLU}
}

// Forward implements Module.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := r.Body.Forward(x, train)
	var sc *tensor.Tensor
	if r.Shortcut != nil {
		sc = r.Shortcut.Forward(x, train)
	} else {
		sc = x
	}
	out := y.Clone()
	out.Add(sc)
	if r.PostReLU {
		if train {
			r.sum = out.Clone()
		}
		out.ReLU()
	}
	return out
}

// Backward implements Module.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := grad
	if r.PostReLU {
		if r.sum == nil {
			panic("nn: Residual.Backward without cached forward")
		}
		g = grad.Clone()
		for i, v := range r.sum.Data {
			if v <= 0 {
				g.Data[i] = 0
			}
		}
	}
	dxBody := r.Body.Backward(g)
	var dxSc *tensor.Tensor
	if r.Shortcut != nil {
		dxSc = r.Shortcut.Backward(g)
	} else {
		dxSc = g
	}
	dx := dxBody.Clone()
	dx.Add(dxSc)
	return dx
}

// Params implements Module.
func (r *Residual) Params() []*Param {
	ps := r.Body.Params()
	if r.Shortcut != nil {
		ps = append(ps, r.Shortcut.Params()...)
	}
	return ps
}

// Visit implements Module.
func (r *Residual) Visit(f func(Module)) {
	f(r)
	r.Body.Visit(f)
	if r.Shortcut != nil {
		r.Shortcut.Visit(f)
	}
}

// ConcatGrowth computes concat(x, Body(x)) along the channel axis — the
// DenseNet growth pattern. Backward splits the gradient accordingly.
type ConcatGrowth struct {
	Name string
	Body Module

	inC int // cached input channel count for backward splitting
}

// NewConcatGrowth builds a dense-growth block.
func NewConcatGrowth(name string, body Module) *ConcatGrowth {
	return &ConcatGrowth{Name: name, Body: body}
}

// Forward implements Module.
func (d *ConcatGrowth) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := d.Body.Forward(x, train)
	d.inC = x.Shape[1]
	return ConcatChannels(x, y)
}

// Backward implements Module.
func (d *ConcatGrowth) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gx, gy := SplitChannels(grad, d.inC)
	dxBody := d.Body.Backward(gy)
	dx := gx.Clone()
	dx.Add(dxBody)
	return dx
}

// Params implements Module.
func (d *ConcatGrowth) Params() []*Param { return d.Body.Params() }

// Visit implements Module.
func (d *ConcatGrowth) Visit(f func(Module)) {
	f(d)
	d.Body.Visit(f)
}

// ConcatChannels concatenates two NCHW tensors along the channel axis.
func ConcatChannels(a, b *tensor.Tensor) *tensor.Tensor {
	if a.Rank() != 4 || b.Rank() != 4 {
		panic("nn: ConcatChannels requires rank-4 tensors")
	}
	n, ca, h, w := a.Shape[0], a.Shape[1], a.Shape[2], a.Shape[3]
	cb := b.Shape[1]
	if b.Shape[0] != n || b.Shape[2] != h || b.Shape[3] != w {
		panic("nn: ConcatChannels spatial/batch mismatch")
	}
	out := tensor.New(n, ca+cb, h, w)
	hw := h * w
	for s := 0; s < n; s++ {
		copy(out.Data[s*(ca+cb)*hw:], a.Data[s*ca*hw:(s+1)*ca*hw])
		copy(out.Data[(s*(ca+cb)+ca)*hw:], b.Data[s*cb*hw:(s+1)*cb*hw])
	}
	return out
}

// SplitChannels is the inverse of ConcatChannels: it splits an NCHW tensor
// after channel ca.
func SplitChannels(t *tensor.Tensor, ca int) (*tensor.Tensor, *tensor.Tensor) {
	n, c, h, w := t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3]
	cb := c - ca
	a := tensor.New(n, ca, h, w)
	b := tensor.New(n, cb, h, w)
	hw := h * w
	for s := 0; s < n; s++ {
		copy(a.Data[s*ca*hw:], t.Data[s*c*hw:s*c*hw+ca*hw])
		copy(b.Data[s*cb*hw:], t.Data[s*c*hw+ca*hw:(s+1)*c*hw])
	}
	return a, b
}

// Convs collects all Conv2D leaves of a module in visiting order. The
// quantization schemes index layers (C1, C2, ...) by this order.
func Convs(m Module) []*Conv2D {
	var out []*Conv2D
	m.Visit(func(mod Module) {
		if c, ok := mod.(*Conv2D); ok {
			out = append(out, c)
		}
	})
	return out
}

// SetConvExec installs a ConvExecutor on every Conv2D in the module tree;
// pass nil to restore the default float path.
func SetConvExec(m Module, e ConvExecutor) {
	for _, c := range Convs(m) {
		c.Exec = e
	}
}

// SetConvExecTail installs a ConvExecutor on every Conv2D except the
// first. Dynamic quantization schemes conventionally keep the first
// (image-consuming) layer at the baseline precision, following DoReFa-Net
// practice, which the paper builds on.
func SetConvExecTail(m Module, e ConvExecutor) {
	for i, c := range Convs(m) {
		if i == 0 {
			continue
		}
		c.Exec = e
	}
}

// SetConvTrainExec installs a training-time straight-through executor on
// every Conv2D except the first (see Conv2D.TrainExec); nil removes it.
func SetConvTrainExec(m Module, e ConvExecutor) {
	for i, c := range Convs(m) {
		if i == 0 {
			continue
		}
		c.TrainExec = e
	}
}

// SetBNFrozen toggles fine-tuning mode on every BatchNorm2D in the tree:
// frozen batch norms normalize with running statistics during training.
func SetBNFrozen(m Module, frozen bool) {
	m.Visit(func(mod Module) {
		if bn, ok := mod.(*BatchNorm2D); ok {
			bn.Frozen = frozen
		}
	})
}
