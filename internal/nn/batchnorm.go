package nn

import (
	"math"

	"repro/internal/tensor"
)

// BatchNorm2D normalizes per channel over (N,H,W). Training mode uses batch
// statistics and updates running estimates; inference uses the running
// estimates (or folded parameters after FoldInto).
type BatchNorm2D struct {
	Name     string
	C        int
	Eps      float32
	Momentum float32

	Gamma *Param // [C]
	Beta  *Param // [C]

	RunningMean *tensor.Tensor // [C]
	RunningVar  *tensor.Tensor // [C]

	// Frozen makes training-mode forward normalize with the running
	// statistics (and stop updating them) — the standard fine-tuning
	// configuration, used during ODQ threshold-aware retraining where
	// batch statistics of approximated activations would drift.
	Frozen bool

	// DeferStats makes training-mode forward record the batch statistics
	// in LastMean/LastVar INSTEAD of folding them into the running
	// estimates. Group-synchronous data-parallel training sets this so
	// the per-batch EMA updates — the one piece of forward-pass state a
	// checkpoint carries — can be broadcast and replayed in global batch
	// order on every rank via ApplyStats, keeping running statistics
	// bit-identical across worker counts. Normalization itself always
	// uses the batch statistics, so the training trajectory is unchanged.
	DeferStats bool

	// LastMean/LastVar are the most recent deferred batch statistics
	// (valid only after a training forward with DeferStats set).
	LastMean []float32
	LastVar  []float32

	// Cached forward state.
	inX     *tensor.Tensor
	xHat    *tensor.Tensor
	batchMu []float32
	batchSD []float32 // sqrt(var+eps)
}

// NewBatchNorm2D builds a batch-norm layer over c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	gamma := tensor.New(c)
	gamma.Fill(1)
	rv := tensor.New(c)
	rv.Fill(1)
	return &BatchNorm2D{
		Name: name, C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:       NewParam(name+".gamma", gamma, false),
		Beta:        NewParam(name+".beta", tensor.New(c), false),
		RunningMean: tensor.New(c),
		RunningVar:  rv,
	}
}

// Forward implements Module.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c != b.C {
		panic("nn: BatchNorm2D channel mismatch")
	}
	hw := h * w
	out := tensor.New(x.Shape...)

	if train && b.Frozen {
		// Fine-tuning mode: normalize with running statistics but keep
		// the backward cache so gamma/beta still learn.
		mu := make([]float32, c)
		sd := make([]float32, c)
		xHat := tensor.New(x.Shape...)
		for ch := 0; ch < c; ch++ {
			mu[ch] = b.RunningMean.Data[ch]
			sd[ch] = float32(math.Sqrt(float64(b.RunningVar.Data[ch]) + float64(b.Eps)))
			g, bt := b.Gamma.W.Data[ch], b.Beta.W.Data[ch]
			for s := 0; s < n; s++ {
				base := (s*c + ch) * hw
				for i := 0; i < hw; i++ {
					xh := (x.Data[base+i] - mu[ch]) / sd[ch]
					xHat.Data[base+i] = xh
					out.Data[base+i] = g*xh + bt
				}
			}
		}
		b.inX, b.xHat, b.batchMu, b.batchSD = x, xHat, mu, sd
		return out
	}

	if train {
		mu := make([]float32, c)
		sd := make([]float32, c)
		if b.DeferStats && len(b.LastMean) != c {
			b.LastMean = make([]float32, c)
			b.LastVar = make([]float32, c)
		}
		cnt := float64(n * hw)
		for ch := 0; ch < c; ch++ {
			var sum float64
			for s := 0; s < n; s++ {
				base := (s*c + ch) * hw
				for i := 0; i < hw; i++ {
					sum += float64(x.Data[base+i])
				}
			}
			m := sum / cnt
			var vr float64
			for s := 0; s < n; s++ {
				base := (s*c + ch) * hw
				for i := 0; i < hw; i++ {
					d := float64(x.Data[base+i]) - m
					vr += d * d
				}
			}
			vr /= cnt
			mu[ch] = float32(m)
			sd[ch] = float32(math.Sqrt(vr + float64(b.Eps)))
			if b.DeferStats {
				// Record the exact float32 values the EMA would have
				// consumed; ApplyStats replays the identical expression.
				b.LastMean[ch] = float32(m)
				b.LastVar[ch] = float32(vr)
			} else {
				b.RunningMean.Data[ch] = (1-b.Momentum)*b.RunningMean.Data[ch] + b.Momentum*float32(m)
				b.RunningVar.Data[ch] = (1-b.Momentum)*b.RunningVar.Data[ch] + b.Momentum*float32(vr)
			}
		}
		xHat := tensor.New(x.Shape...)
		for ch := 0; ch < c; ch++ {
			g, bt := b.Gamma.W.Data[ch], b.Beta.W.Data[ch]
			for s := 0; s < n; s++ {
				base := (s*c + ch) * hw
				for i := 0; i < hw; i++ {
					xh := (x.Data[base+i] - mu[ch]) / sd[ch]
					xHat.Data[base+i] = xh
					out.Data[base+i] = g*xh + bt
				}
			}
		}
		b.inX, b.xHat, b.batchMu, b.batchSD = x, xHat, mu, sd
		return out
	}

	for ch := 0; ch < c; ch++ {
		m := b.RunningMean.Data[ch]
		sd := float32(math.Sqrt(float64(b.RunningVar.Data[ch]) + float64(b.Eps)))
		g, bt := b.Gamma.W.Data[ch], b.Beta.W.Data[ch]
		scale := g / sd
		shift := bt - m*scale
		for s := 0; s < n; s++ {
			base := (s*c + ch) * hw
			for i := 0; i < hw; i++ {
				out.Data[base+i] = x.Data[base+i]*scale + shift
			}
		}
	}
	return out
}

// Backward implements Module (standard batch-norm gradient).
func (b *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.xHat == nil {
		panic("nn: BatchNorm2D.Backward without cached forward")
	}
	n, c := grad.Shape[0], grad.Shape[1]
	hw := grad.Shape[2] * grad.Shape[3]
	m := float32(n * hw)
	dX := tensor.New(grad.Shape...)
	for ch := 0; ch < c; ch++ {
		var dGamma, dBeta float64
		for s := 0; s < n; s++ {
			base := (s*c + ch) * hw
			for i := 0; i < hw; i++ {
				dGamma += float64(grad.Data[base+i] * b.xHat.Data[base+i])
				dBeta += float64(grad.Data[base+i])
			}
		}
		b.Gamma.Grad.Data[ch] += float32(dGamma)
		b.Beta.Grad.Data[ch] += float32(dBeta)

		g := b.Gamma.W.Data[ch]
		invSD := 1 / b.batchSD[ch]
		if b.Frozen {
			// Running statistics are constants: the gradient is a
			// plain per-channel affine backprop.
			for s := 0; s < n; s++ {
				base := (s*c + ch) * hw
				for i := 0; i < hw; i++ {
					dX.Data[base+i] = g * invSD * grad.Data[base+i]
				}
			}
			continue
		}
		sumDy := float32(dBeta)
		sumDyXhat := float32(dGamma)
		for s := 0; s < n; s++ {
			base := (s*c + ch) * hw
			for i := 0; i < hw; i++ {
				dy := grad.Data[base+i]
				xh := b.xHat.Data[base+i]
				dX.Data[base+i] = g * invSD * (dy - sumDy/m - xh*sumDyXhat/m)
			}
		}
	}
	b.xHat = nil
	return dX
}

// Params implements Module.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// Visit implements Module.
func (b *BatchNorm2D) Visit(f func(Module)) { f(b) }

// ApplyStats folds one batch's deferred statistics into the running
// estimates with the exact float expression the inline EMA uses, so
// replaying deferred batches in their global order produces running
// statistics bit-identical to a sequential single-worker run.
func (b *BatchNorm2D) ApplyStats(mean, variance []float32) {
	if len(mean) != b.C || len(variance) != b.C {
		panic("nn: ApplyStats channel mismatch")
	}
	for ch := 0; ch < b.C; ch++ {
		b.RunningMean.Data[ch] = (1-b.Momentum)*b.RunningMean.Data[ch] + b.Momentum*mean[ch]
		b.RunningVar.Data[ch] = (1-b.Momentum)*b.RunningVar.Data[ch] + b.Momentum*variance[ch]
	}
}

// EvalAffine returns the per-channel affine (scale, shift) the inference
// forward applies: out = x*scale + shift with scale = gamma/sqrt(var+eps)
// and shift = beta - mean*scale, computed with the exact float operations
// of the eval branch of Forward. Fused conv epilogues use this to apply
// batch-norm in the quantized domain bit-identically to the float path.
func (b *BatchNorm2D) EvalAffine() (scale, shift []float32) {
	scale = make([]float32, b.C)
	shift = make([]float32, b.C)
	for ch := 0; ch < b.C; ch++ {
		sd := float32(math.Sqrt(float64(b.RunningVar.Data[ch]) + float64(b.Eps)))
		sc := b.Gamma.W.Data[ch] / sd
		scale[ch] = sc
		shift[ch] = b.Beta.W.Data[ch] - b.RunningMean.Data[ch]*sc
	}
	return scale, shift
}

// FoldInto folds this batch-norm's inference transform into the preceding
// convolution, so quantized executors see a single conv with adjusted
// weights and bias. After folding the BN becomes an identity (gamma=1,
// beta=0, running stats reset).
func (b *BatchNorm2D) FoldInto(conv *Conv2D) {
	if conv.OutC != b.C {
		panic("nn: FoldInto channel mismatch")
	}
	if conv.Bias == nil {
		conv.Bias = NewParam(conv.Name+".bias", tensor.New(conv.OutC), false)
	}
	per := conv.InC * conv.K * conv.K
	for o := 0; o < b.C; o++ {
		sd := float32(math.Sqrt(float64(b.RunningVar.Data[o]) + float64(b.Eps)))
		scale := b.Gamma.W.Data[o] / sd
		base := o * per
		for i := 0; i < per; i++ {
			conv.Weight.W.Data[base+i] *= scale
		}
		conv.Bias.W.Data[o] = (conv.Bias.W.Data[o]-b.RunningMean.Data[o])*scale + b.Beta.W.Data[o]
	}
	b.Gamma.W.Fill(1)
	b.Beta.W.Fill(0)
	b.RunningMean.Fill(0)
	b.RunningVar.Fill(1)
	b.Eps = 0
}
