package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// checkpoint is the serialized form of a module's state: parameter and
// batch-norm-statistic tensors keyed by name.
type checkpoint struct {
	Version int
	Tensors map[string][]float32
}

// stateTensors collects every persistent tensor of the module tree:
// trainable parameters plus batch-norm running statistics.
func stateTensors(m Module) map[string][]float32 {
	out := make(map[string][]float32)
	for _, p := range m.Params() {
		out[p.Name] = p.W.Data
	}
	m.Visit(func(mod Module) {
		if bn, ok := mod.(*BatchNorm2D); ok {
			out[bn.Name+".running_mean"] = bn.RunningMean.Data
			out[bn.Name+".running_var"] = bn.RunningVar.Data
		}
	})
	return out
}

// Save writes the module's parameters and batch-norm statistics to w in
// gob format.
func Save(w io.Writer, m Module) error {
	ck := checkpoint{Version: 1, Tensors: stateTensors(m)}
	return gob.NewEncoder(w).Encode(&ck)
}

// Load restores state previously written by Save into a module with the
// same architecture (parameter names and shapes must match exactly).
func Load(r io.Reader, m Module) error {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	if ck.Version != 1 {
		return fmt.Errorf("nn: unsupported checkpoint version %d", ck.Version)
	}
	state := stateTensors(m)
	if len(state) != len(ck.Tensors) {
		return fmt.Errorf("nn: checkpoint has %d tensors, model has %d", len(ck.Tensors), len(state))
	}
	for name, dst := range state {
		src, ok := ck.Tensors[name]
		if !ok {
			return fmt.Errorf("nn: checkpoint missing tensor %q", name)
		}
		if len(src) != len(dst) {
			return fmt.Errorf("nn: tensor %q has %d values in checkpoint, model wants %d",
				name, len(src), len(dst))
		}
		copy(dst, src)
	}
	return nil
}
