package nn

import (
	"fmt"
	"io"

	"repro/internal/ckpt"
)

// StateTensors collects every persistent tensor of the module tree —
// trainable parameters plus batch-norm running statistics — keyed by
// name. It errors on duplicate names: two parameters sharing a name
// would silently overwrite each other in the map, so one of them would
// load with the other's values (a corrupted model with no symptom until
// accuracy collapses).
func StateTensors(m Module) (map[string][]float32, error) {
	out := make(map[string][]float32)
	var err error
	record := func(name string, data []float32) {
		if _, dup := out[name]; dup && err == nil {
			err = fmt.Errorf("nn: duplicate state tensor name %q: parameter names must be unique for checkpointing", name)
		}
		out[name] = data
	}
	for _, p := range m.Params() {
		record(p.Name, p.W.Data)
	}
	m.Visit(func(mod Module) {
		if bn, ok := mod.(*BatchNorm2D); ok {
			record(bn.Name+".running_mean", bn.RunningMean.Data)
			record(bn.Name+".running_var", bn.RunningVar.Data)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Save writes the module's parameters and batch-norm statistics to w in
// checkpoint format v2 (framed, CRC-checksummed; see package ckpt).
// Training code that also needs optimizer/progress state saved uses
// package ckpt directly with these tensors as the model section.
func Save(w io.Writer, m Module) error {
	state, err := StateTensors(m)
	if err != nil {
		return err
	}
	return ckpt.Write(w, &ckpt.Checkpoint{Model: state})
}

// Load restores state previously written by Save — either format v2 or
// the legacy v1 gob — into a module with the same architecture
// (parameter names and shapes must match exactly).
func Load(r io.Reader, m Module) error {
	ck, err := ckpt.ReadAny(r)
	if err != nil {
		return fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	return ApplyState(m, ck.Model)
}

// ApplyState copies a name→values state map (a checkpoint's model
// section) into the module tree, validating that names and shapes match
// exactly in both directions.
func ApplyState(m Module, tensors map[string][]float32) error {
	state, err := StateTensors(m)
	if err != nil {
		return err
	}
	if len(state) != len(tensors) {
		return fmt.Errorf("nn: checkpoint has %d tensors, model has %d", len(tensors), len(state))
	}
	for name, dst := range state {
		src, ok := tensors[name]
		if !ok {
			return fmt.Errorf("nn: checkpoint missing tensor %q", name)
		}
		if len(src) != len(dst) {
			return fmt.Errorf("nn: tensor %q has %d values in checkpoint, model wants %d",
				name, len(src), len(dst))
		}
		copy(dst, src)
	}
	return nil
}
