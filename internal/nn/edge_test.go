package nn

import (
	"testing"

	"repro/internal/tensor"
)

// Edge-case and failure-injection coverage for the layer zoo.

func TestConv1x1(t *testing.T) {
	rng := tensor.NewRNG(1)
	c := NewConv2D("c", 4, 8, 1, 1, 0, false, rng)
	x := tensor.New(2, 4, 7, 5) // non-square on purpose
	rng.FillNormal(x, 0, 1)
	out := c.Forward(x, false)
	if out.Shape[2] != 7 || out.Shape[3] != 5 {
		t.Fatalf("1x1 conv must preserve spatial dims: %v", out.Shape)
	}
	// A 1×1 conv is a per-pixel matmul; verify one output by hand.
	var want float32
	for ic := 0; ic < 4; ic++ {
		want += c.Weight.W.Data[1*4+ic] * x.At4(0, ic, 3, 2)
	}
	if got := out.At4(0, 1, 3, 2); abs32(got-want) > 1e-5 {
		t.Fatalf("1x1 conv value %v, want %v", got, want)
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestConvNonSquareGradients(t *testing.T) {
	rng := tensor.NewRNG(2)
	c := NewConv2D("c", 2, 3, 3, 2, 1, true, rng)
	x := tensor.New(1, 2, 9, 5)
	rng.FillNormal(x, 0, 1)
	gradCheck(t, c, x, 0.03)
}

func TestConvChannelMismatchPanics(t *testing.T) {
	rng := tensor.NewRNG(3)
	c := NewConv2D("c", 3, 4, 3, 1, 1, false, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on channel mismatch")
		}
	}()
	c.Forward(tensor.New(1, 2, 8, 8), false)
}

func TestConvRankMismatchPanics(t *testing.T) {
	rng := tensor.NewRNG(4)
	c := NewConv2D("c", 3, 4, 3, 1, 1, false, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on rank mismatch")
		}
	}()
	c.Forward(tensor.New(3, 8, 8), false)
}

func TestBackwardWithoutForwardPanics(t *testing.T) {
	rng := tensor.NewRNG(5)
	mods := []Module{
		NewConv2D("c", 1, 1, 3, 1, 1, false, rng),
		NewBatchNorm2D("bn", 1),
		NewReLU("r"),
		NewMaxPool2D("p", 2, 2),
		NewLinear("fc", 2, 2, rng),
	}
	g := tensor.New(1, 1, 2, 2)
	for _, m := range mods {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%T: expected panic on backward without forward", m)
				}
			}()
			m.Backward(g)
		}()
	}
}

type fixedExec struct{ v float32 }

func (f fixedExec) Conv(x *tensor.Tensor, l *Conv2D) *tensor.Tensor {
	g := l.Geom(x.Shape[2], x.Shape[3])
	out := tensor.New(x.Shape[0], g.OutC, g.OutH, g.OutW)
	out.Fill(f.v)
	return out
}

func TestTrainExecStraightThrough(t *testing.T) {
	rng := tensor.NewRNG(6)
	c := NewConv2D("c", 1, 1, 3, 1, 1, false, rng)
	c.TrainExec = fixedExec{v: 7}
	x := tensor.New(1, 1, 4, 4)
	rng.FillNormal(x, 0, 1)

	out := c.Forward(x, true)
	for _, v := range out.Data {
		if v != 7 {
			t.Fatalf("TrainExec output must be forwarded, got %v", v)
		}
	}
	// Backward must still run off the plain-conv cache (STE).
	grad := tensor.New(out.Shape...)
	grad.Fill(1)
	c.Weight.ZeroGrad()
	dx := c.Backward(grad)
	if dx.L2() == 0 || c.Weight.Grad.L2() == 0 {
		t.Fatal("straight-through gradients must flow through the plain conv")
	}

	// Inference must ignore TrainExec entirely.
	inf := c.Forward(x, false)
	for _, v := range inf.Data {
		if v == 7 {
			t.Fatal("TrainExec must not affect inference")
		}
		break
	}
}

func TestBNFrozenUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm2D("bn", 1)
	bn.RunningMean.Data[0] = 5
	bn.RunningVar.Data[0] = 4
	SetBNFrozen(bn, true)
	x := tensor.New(2, 1, 2, 2)
	x.Fill(5) // equals the running mean → normalized output 0
	out := bn.Forward(x, true)
	for _, v := range out.Data {
		if abs32(v) > 1e-4 {
			t.Fatalf("frozen BN must use running stats: got %v", v)
		}
	}
	// Running stats must not update while frozen.
	if bn.RunningMean.Data[0] != 5 || bn.RunningVar.Data[0] != 4 {
		t.Fatal("frozen BN must not update running statistics")
	}
	// Backward path works and produces gamma/beta gradients.
	g := tensor.New(x.Shape...)
	g.Fill(1)
	dx := bn.Backward(g)
	if dx.SameShape(x) == false {
		t.Fatal("frozen BN backward shape wrong")
	}
	if bn.Beta.Grad.Data[0] == 0 {
		t.Fatal("frozen BN must still accumulate beta gradient")
	}
}

func TestQuantRelaxedBypassesWeightQuant(t *testing.T) {
	rng := tensor.NewRNG(7)
	c := NewConv2D("c", 1, 1, 1, 1, 0, false, rng)
	c.WeightQuant = coarseQuant{}
	x := tensor.New(1, 1, 2, 2)
	x.Fill(1)

	quantized := c.Forward(x, false).Data[0]
	c.QuantRelaxed = true
	relaxed := c.Forward(x, false).Data[0]
	if quantized == relaxed {
		t.Fatal("QuantRelaxed must bypass the fake quantizer")
	}
	if relaxed != c.Weight.W.Data[0] {
		t.Fatal("relaxed path must use raw weights")
	}
}

type coarseQuant struct{}

func (coarseQuant) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	for i, v := range out.Data {
		if v >= 0 {
			out.Data[i] = 1
		} else {
			out.Data[i] = -1
		}
	}
	return out
}

func (coarseQuant) Backward(grad, _ *tensor.Tensor) *tensor.Tensor { return grad.Clone() }

func TestResidualShapeMismatchPanics(t *testing.T) {
	rng := tensor.NewRNG(8)
	// Body halves the spatial size but there is no matching shortcut.
	body := NewConv2D("b", 2, 2, 3, 2, 1, false, rng)
	r := NewResidual("res", body, nil, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on residual shape mismatch")
		}
	}()
	r.Forward(tensor.New(1, 2, 8, 8), false)
}

func TestSequentialEmpty(t *testing.T) {
	s := NewSequential("empty")
	x := tensor.New(1, 1, 2, 2)
	out := s.Forward(x, false)
	if out != x {
		t.Fatal("empty sequential must be identity")
	}
	if s.Params() != nil {
		t.Fatal("empty sequential has no params")
	}
}

func TestGlobalAvgPool1x1(t *testing.T) {
	p := NewGlobalAvgPool2D("g")
	x := tensor.New(1, 3, 1, 1)
	x.Data = []float32{1, 2, 3}
	out := p.Forward(x, false)
	for i, v := range out.Data {
		if v != x.Data[i] {
			t.Fatal("1x1 GAP must be identity per channel")
		}
	}
}
