package nn

import (
	"math"

	"repro/internal/tensor"
)

// SoftmaxCE computes softmax cross-entropy loss over logits [N, classes]
// with integer labels. It returns the mean loss and the gradient w.r.t.
// the logits (already divided by the batch size).
func SoftmaxCE(logits *tensor.Tensor, labels []int) (float32, *tensor.Tensor) {
	n, c := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic("nn: SoftmaxCE label count mismatch")
	}
	grad := tensor.New(n, c)
	var total float64
	for s := 0; s < n; s++ {
		row := logits.Data[s*c : (s+1)*c]
		mx := row[0]
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - mx))
		}
		logSum := math.Log(sum)
		lbl := labels[s]
		total += logSum - float64(row[lbl]-mx)
		for j := 0; j < c; j++ {
			p := math.Exp(float64(row[j]-mx)) / sum
			g := float32(p)
			if j == lbl {
				g -= 1
			}
			grad.Data[s*c+j] = g / float32(n)
		}
	}
	return float32(total / float64(n)), grad
}

// Softmax returns the row-wise softmax of logits [N, classes].
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, c := logits.Shape[0], logits.Shape[1]
	out := tensor.New(n, c)
	for s := 0; s < n; s++ {
		row := logits.Data[s*c : (s+1)*c]
		mx := row[0]
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - mx))
		}
		for j := 0; j < c; j++ {
			out.Data[s*c+j] = float32(math.Exp(float64(row[j]-mx)) / sum)
		}
	}
	return out
}

// Accuracy returns the top-1 accuracy of logits [N, classes] against labels.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	pred := logits.ArgmaxRows()
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	if len(labels) == 0 {
		return 0
	}
	return float64(correct) / float64(len(labels))
}
