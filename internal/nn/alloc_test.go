package nn

import (
	"testing"

	"repro/internal/tensor"
)

// TestConvTrainStepSteadyStateAllocs pins the allocation behavior of the
// training convolution: the per-sample im2col, dCols and weight-gradient
// buffers (and the seed's transpose buffers, which no longer exist) must
// come from the shared scratch pools, not fresh make calls. The inherent
// per-step allocations are the output and input-gradient tensors
// (~inherentBytes); the seed implementation allocated several megabytes of
// per-sample scratch on top. The bound sits between the two, so a
// regression to per-sample allocation fails loudly while pool churn noise
// does not.
func TestConvTrainStepSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation benchmark")
	}
	if raceEnabled {
		t.Skip("race runtime makes sync.Pool lossy and inflates allocations")
	}
	rng := tensor.NewRNG(7)
	conv := NewConv2D("c", 8, 16, 3, 1, 1, true, rng)
	const batch, hw = 16, 16
	x := tensor.New(batch, 8, hw, hw)
	rng.FillUniform(x, -1, 1)
	grad := tensor.New(batch, 16, hw, hw)
	rng.FillUniform(grad, -1, 1)

	step := func() {
		out := conv.Forward(x, true)
		_ = out
		dx := conv.Backward(grad)
		_ = dx
		conv.Weight.ZeroGrad()
		conv.Bias.ZeroGrad()
	}
	// Warm the scratch pools before measuring.
	for i := 0; i < 5; i++ {
		step()
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			step()
		}
	})

	// Inherent: out (batch·16·hw² floats) + dX (batch·8·hw² floats) plus
	// bookkeeping slices. Seed-style per-sample scratch would add
	// ~3 MB/op (cols + dCols + dW per sample + transpose buffers).
	inherentBytes := int64(batch*16*hw*hw*4 + batch*8*hw*hw*4)
	limit := inherentBytes*2 + 256*1024
	if got := r.AllocedBytesPerOp(); got > limit {
		t.Fatalf("train step allocates %d B/op, want <= %d (inherent %d): per-sample scratch is not being pooled",
			got, limit, inherentBytes)
	}
}
