package nn

import (
	"math"

	"repro/internal/tensor"
)

// ReLU applies the rectifier elementwise.
type ReLU struct {
	Name string
	mask []bool
}

// NewReLU builds a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{Name: name} }

// Forward implements Module.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	if train {
		r.mask = make([]bool, x.Len())
	}
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			if train {
				r.mask[i] = true
			}
		}
	}
	return out
}

// Backward implements Module.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: ReLU.Backward without cached forward")
	}
	out := tensor.New(grad.Shape...)
	for i, m := range r.mask {
		if m {
			out.Data[i] = grad.Data[i]
		}
	}
	r.mask = nil
	return out
}

// Params implements Module.
func (r *ReLU) Params() []*Param { return nil }

// Visit implements Module.
func (r *ReLU) Visit(f func(Module)) { f(r) }

// MaxPool2D performs max pooling with square window k and stride s.
type MaxPool2D struct {
	Name string
	K, S int

	argmax  []int
	inShape []int
}

// NewMaxPool2D builds a max-pool layer.
func NewMaxPool2D(name string, k, s int) *MaxPool2D { return &MaxPool2D{Name: name, K: k, S: s} }

// Forward implements Module.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h-p.K)/p.S + 1
	ow := (w-p.K)/p.S + 1
	out := tensor.New(n, c, oh, ow)
	if train {
		p.argmax = make([]int, out.Len())
		p.inShape = x.Shape
	}
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			inBase := (s*c + ch) * h * w
			outBase := (s*c + ch) * oh * ow
			for y := 0; y < oh; y++ {
				for xo := 0; xo < ow; xo++ {
					best := float32(math.Inf(-1))
					bi := -1
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							idx := inBase + (y*p.S+ky)*w + xo*p.S + kx
							if v := x.Data[idx]; v > best {
								best, bi = v, idx
							}
						}
					}
					oi := outBase + y*ow + xo
					out.Data[oi] = best
					if train {
						p.argmax[oi] = bi
					}
				}
			}
		}
	}
	return out
}

// Backward implements Module.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.argmax == nil {
		panic("nn: MaxPool2D.Backward without cached forward")
	}
	dX := tensor.New(p.inShape...)
	for i, src := range p.argmax {
		dX.Data[src] += grad.Data[i]
	}
	p.argmax = nil
	return dX
}

// Params implements Module.
func (p *MaxPool2D) Params() []*Param { return nil }

// Visit implements Module.
func (p *MaxPool2D) Visit(f func(Module)) { f(p) }

// AvgPool2D performs average pooling with square window k and stride s.
type AvgPool2D struct {
	Name string
	K, S int

	inShape []int
}

// NewAvgPool2D builds an average-pool layer.
func NewAvgPool2D(name string, k, s int) *AvgPool2D { return &AvgPool2D{Name: name, K: k, S: s} }

// Forward implements Module.
func (p *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h-p.K)/p.S + 1
	ow := (w-p.K)/p.S + 1
	out := tensor.New(n, c, oh, ow)
	inv := 1 / float32(p.K*p.K)
	if train {
		p.inShape = x.Shape
	}
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			inBase := (s*c + ch) * h * w
			outBase := (s*c + ch) * oh * ow
			for y := 0; y < oh; y++ {
				for xo := 0; xo < ow; xo++ {
					var sum float32
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							sum += x.Data[inBase+(y*p.S+ky)*w+xo*p.S+kx]
						}
					}
					out.Data[outBase+y*ow+xo] = sum * inv
				}
			}
		}
	}
	return out
}

// Backward implements Module.
func (p *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.inShape == nil {
		panic("nn: AvgPool2D.Backward without cached forward")
	}
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	oh, ow := grad.Shape[2], grad.Shape[3]
	dX := tensor.New(p.inShape...)
	inv := 1 / float32(p.K*p.K)
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			inBase := (s*c + ch) * h * w
			outBase := (s*c + ch) * oh * ow
			for y := 0; y < oh; y++ {
				for xo := 0; xo < ow; xo++ {
					g := grad.Data[outBase+y*ow+xo] * inv
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							dX.Data[inBase+(y*p.S+ky)*w+xo*p.S+kx] += g
						}
					}
				}
			}
		}
	}
	return dX
}

// Params implements Module.
func (p *AvgPool2D) Params() []*Param { return nil }

// Visit implements Module.
func (p *AvgPool2D) Visit(f func(Module)) { f(p) }

// GlobalAvgPool2D averages each channel to a single value and flattens to
// [N, C].
type GlobalAvgPool2D struct {
	Name    string
	inShape []int
}

// NewGlobalAvgPool2D builds a global average pooling layer.
func NewGlobalAvgPool2D(name string) *GlobalAvgPool2D { return &GlobalAvgPool2D{Name: name} }

// Forward implements Module.
func (p *GlobalAvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c := x.Shape[0], x.Shape[1]
	hw := x.Shape[2] * x.Shape[3]
	out := tensor.New(n, c)
	inv := 1 / float32(hw)
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			var sum float32
			base := (s*c + ch) * hw
			for i := 0; i < hw; i++ {
				sum += x.Data[base+i]
			}
			out.Data[s*c+ch] = sum * inv
		}
	}
	if train {
		p.inShape = x.Shape
	}
	return out
}

// Backward implements Module.
func (p *GlobalAvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.inShape == nil {
		panic("nn: GlobalAvgPool2D.Backward without cached forward")
	}
	n, c := p.inShape[0], p.inShape[1]
	hw := p.inShape[2] * p.inShape[3]
	dX := tensor.New(p.inShape...)
	inv := 1 / float32(hw)
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			g := grad.Data[s*c+ch] * inv
			base := (s*c + ch) * hw
			for i := 0; i < hw; i++ {
				dX.Data[base+i] = g
			}
		}
	}
	return dX
}

// Params implements Module.
func (p *GlobalAvgPool2D) Params() []*Param { return nil }

// Visit implements Module.
func (p *GlobalAvgPool2D) Visit(f func(Module)) { f(p) }

// Flatten reshapes [N, ...] to [N, rest].
type Flatten struct {
	Name    string
	inShape []int
}

// NewFlatten builds a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{Name: name} }

// Forward implements Module.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.inShape = x.Shape
	}
	return x.Reshape(x.Shape[0], -1)
}

// Backward implements Module.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if f.inShape == nil {
		panic("nn: Flatten.Backward without cached forward")
	}
	return grad.Reshape(f.inShape...)
}

// Params implements Module.
func (f *Flatten) Params() []*Param { return nil }

// Visit implements Module.
func (f *Flatten) Visit(fn func(Module)) { fn(f) }

// Linear is a fully connected layer: y = x·Wᵀ + b with x of shape [N, in].
type Linear struct {
	Name    string
	In, Out int
	Weight  *Param // [Out, In]
	Bias    *Param // [Out]

	inX *tensor.Tensor
}

// NewLinear builds a fully connected layer.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	w := tensor.New(out, in)
	rng.KaimingLinear(w)
	return &Linear{
		Name: name, In: in, Out: out,
		Weight: NewParam(name+".weight", w, true),
		Bias:   NewParam(name+".bias", tensor.New(out), false),
	}
}

// Forward implements Module.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Shape[0]
	if x.Shape[1] != l.In {
		panic("nn: Linear input size mismatch")
	}
	out := tensor.New(n, l.Out)
	// out = x (n×in) · Wᵀ (in×out); the transpose is absorbed by the
	// GemmNT packing pass (out is freshly zeroed, so += is =).
	tensor.GemmNT(x.Data, l.Weight.W.Data, out.Data, n, l.In, l.Out)
	for s := 0; s < n; s++ {
		for o := 0; o < l.Out; o++ {
			out.Data[s*l.Out+o] += l.Bias.W.Data[o]
		}
	}
	if train {
		l.inX = x
	}
	return out
}

// Backward implements Module.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.inX == nil {
		panic("nn: Linear.Backward without cached forward")
	}
	n := grad.Shape[0]
	// dW += gradᵀ (out×n) · x (n×in); transpose absorbed by GemmTN.
	tensor.GemmTN(grad.Data, l.inX.Data, l.Weight.Grad.Data, l.Out, n, l.In)
	for s := 0; s < n; s++ {
		for o := 0; o < l.Out; o++ {
			l.Bias.Grad.Data[o] += grad.Data[s*l.Out+o]
		}
	}
	// dX = grad (n×out) · W (out×in)
	dX := tensor.New(n, l.In)
	tensor.Gemm(grad.Data, l.Weight.W.Data, dX.Data, n, l.Out, l.In)
	l.inX = nil
	return dX
}

// Params implements Module.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Visit implements Module.
func (l *Linear) Visit(f func(Module)) { f(l) }
