package models

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func cifarInput(n int) *tensor.Tensor {
	x := tensor.New(n, 3, 32, 32)
	tensor.NewRNG(1).FillUniform(x, 0, 1)
	return x
}

func TestResNet20Shapes(t *testing.T) {
	net := ResNet(20, Config{Classes: 10, Scale: 0.25, Seed: 1})
	out := net.Forward(cifarInput(2), false)
	if out.Shape[0] != 2 || out.Shape[1] != 10 {
		t.Fatalf("resnet20 output %v", out.Shape)
	}
	if got := len(nn.Convs(net)); got != 19+2 { // 19 body convs + 2 projection shortcuts
		t.Fatalf("resnet20 conv count = %d", got)
	}
}

func TestResNet56ConvCount(t *testing.T) {
	net := ResNet(56, Config{Classes: 10, Scale: 0.125, Seed: 1})
	// 1 + 2*27 body convs + 2 projections
	if got := len(nn.Convs(net)); got != 1+54+2 {
		t.Fatalf("resnet56 conv count = %d", got)
	}
	out := net.Forward(cifarInput(1), false)
	if out.Shape[1] != 10 {
		t.Fatalf("resnet56 output %v", out.Shape)
	}
}

func TestResNetBadDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad depth")
		}
	}()
	ResNet(21, Config{Classes: 10})
}

func TestVGG16Shapes(t *testing.T) {
	net := VGG16(Config{Classes: 100, Scale: 0.0625, Seed: 2})
	out := net.Forward(cifarInput(2), false)
	if out.Shape[0] != 2 || out.Shape[1] != 100 {
		t.Fatalf("vgg16 output %v", out.Shape)
	}
	if got := len(nn.Convs(net)); got != 13 {
		t.Fatalf("vgg16 conv count = %d", got)
	}
}

func TestDenseNetShapes(t *testing.T) {
	net := DenseNet(Config{Classes: 10, Scale: 0.34, Seed: 3})
	out := net.Forward(cifarInput(1), false)
	if out.Shape[1] != 10 {
		t.Fatalf("densenet output %v", out.Shape)
	}
	// 1 initial + 36 growth + 2 transition convs
	if got := len(nn.Convs(net)); got != 39 {
		t.Fatalf("densenet conv count = %d", got)
	}
}

func TestLeNet5Shapes(t *testing.T) {
	net := LeNet5(Config{Classes: 10, Seed: 4})
	x := tensor.New(2, 1, 28, 28)
	tensor.NewRNG(5).FillUniform(x, 0, 1)
	out := net.Forward(x, false)
	if out.Shape[0] != 2 || out.Shape[1] != 10 {
		t.Fatalf("lenet5 output %v", out.Shape)
	}
}

func TestBuildRegistry(t *testing.T) {
	for _, name := range append(Names(), "lenet5") {
		cfg := Config{Classes: 10, Scale: 0.125, Seed: 1}
		if _, err := Build(name, cfg); err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
	}
	if _, err := Build("alexnet", Config{}); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestQATWiring(t *testing.T) {
	net := ResNet(20, Config{Classes: 10, Scale: 0.25, QATBits: 4, Seed: 1})
	for _, c := range nn.Convs(net) {
		if c.WeightQuant == nil {
			t.Fatalf("conv %s missing weight quantizer", c.Name)
		}
	}
	var qrelus, relus int
	net.Visit(func(m nn.Module) {
		switch m.(type) {
		case *quant.QuantReLU:
			qrelus++
		case *nn.ReLU:
			relus++
		}
	})
	if relus != 0 || qrelus == 0 {
		t.Fatalf("QAT model has %d ReLU and %d QuantReLU", relus, qrelus)
	}
}

func TestQATForwardBackwardRuns(t *testing.T) {
	net := ResNet(20, Config{Classes: 10, Scale: 0.25, QATBits: 4, Seed: 1})
	x := cifarInput(2)
	out := net.Forward(x, true)
	loss, grad := nn.SoftmaxCE(out, []int{1, 2})
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	dx := net.Backward(grad)
	if !dx.SameShape(x) {
		t.Fatalf("input grad shape %v", dx.Shape)
	}
}

func TestScaleFloorsWidths(t *testing.T) {
	cfg := Config{Classes: 10, Scale: 0.01, Seed: 1}
	net := ResNet(20, cfg)
	for _, c := range nn.Convs(net) {
		if c.OutC < 4 {
			t.Fatalf("width %d below floor", c.OutC)
		}
	}
}

func TestDeterministicInit(t *testing.T) {
	a := ResNet(20, Config{Classes: 10, Scale: 0.25, Seed: 7})
	b := ResNet(20, Config{Classes: 10, Scale: 0.25, Seed: 7})
	ca, cb := nn.Convs(a)[3], nn.Convs(b)[3]
	if tensor.MaxAbsDiff(ca.Weight.W, cb.Weight.W) != 0 {
		t.Fatal("same seed must give identical weights")
	}
}
