// Package models builds the DNN architectures evaluated in the paper —
// ResNet-20, ResNet-56, VGG-16 and DenseNet (CIFAR variants), plus LeNet-5
// for the Figure-1 illustration. Every constructor accepts a width scale so
// the experiment harness can run laptop-sized variants, and a QAT bit width
// that installs DoReFa-style weight fake-quantizers and QuantReLU
// activations throughout.
package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Config controls model construction.
type Config struct {
	// Classes is the classifier output width (10 for the CIFAR-10-like
	// dataset, 100 for the CIFAR-100-like one).
	Classes int
	// Scale multiplies every channel width (1.0 = paper-size). Widths
	// are floored at 4 channels.
	Scale float64
	// QATBits, when nonzero, builds the network for quantization-aware
	// training at that bit width: weight fake-quantizers on every conv
	// and QuantReLU activations in place of ReLU.
	QATBits int
	// ActRange is the PACT-style activation clipping range in
	// pre-activation units (see quant.QuantReLU.Range); 0 defaults to 3,
	// which keeps gradients alive through deep stacks.
	ActRange float64
	// Seed drives weight initialization.
	Seed int64
}

func (c Config) width(w int) int {
	s := c.Scale
	if s == 0 {
		s = 1
	}
	out := int(float64(w)*s + 0.5)
	if out < 4 {
		out = 4
	}
	return out
}

// act returns the activation module appropriate for the config: QuantReLU
// under QAT, plain ReLU otherwise.
func (c Config) act(name string) nn.Module {
	if c.QATBits > 0 {
		q := quant.NewQuantReLU(name, c.QATBits)
		r := c.ActRange
		if r == 0 {
			r = 3
		}
		q.Range = float32(r)
		return q
	}
	return nn.NewReLU(name)
}

// conv builds a conv layer, installing the weight fake-quantizer under QAT.
func (c Config) conv(name string, inC, outC, k, stride, pad int, bias bool, rng *tensor.RNG) *nn.Conv2D {
	l := nn.NewConv2D(name, inC, outC, k, stride, pad, bias, rng)
	if c.QATBits > 0 {
		l.WeightQuant = &quant.WeightQuantizer{Bits: c.QATBits}
	}
	return l
}

// SetQATRelaxed toggles the float warm-up mode on a QAT-built model: when
// relaxed, fake quantizers and QuantReLU clipping are bypassed so the
// network first trains in float, then fine-tunes under quantization — the
// standard (and far more stable) QAT recipe.
func SetQATRelaxed(net nn.Module, relaxed bool) {
	net.Visit(func(m nn.Module) {
		switch v := m.(type) {
		case *nn.Conv2D:
			v.QuantRelaxed = relaxed
		case *quant.QuantReLU:
			v.Relaxed = relaxed
		}
	})
}

// Build constructs a model by name: "lenet5", "resnet20", "resnet56",
// "vgg16", or "densenet".
func Build(name string, cfg Config) (*nn.Sequential, error) {
	switch name {
	case "lenet5":
		return LeNet5(cfg), nil
	case "resnet20":
		return ResNet(20, cfg), nil
	case "resnet32":
		return ResNet(32, cfg), nil
	case "resnet44":
		return ResNet(44, cfg), nil
	case "resnet56":
		return ResNet(56, cfg), nil
	case "vgg16":
		return VGG16(cfg), nil
	case "densenet":
		return DenseNet(cfg), nil
	}
	return nil, fmt.Errorf("models: unknown model %q", name)
}

// Names lists the models of the paper's evaluation in its reporting order.
func Names() []string { return []string{"resnet56", "resnet20", "vgg16", "densenet"} }

// ResNet builds the CIFAR-style ResNet of the given depth (20 or 56 in the
// paper; any depth ≡ 2 mod 6 works). Post-activation v1 ordering:
// conv-BN-ReLU with identity or projection shortcuts.
func ResNet(depth int, cfg Config) *nn.Sequential {
	if (depth-2)%6 != 0 {
		panic(fmt.Sprintf("models: ResNet depth %d is not 6n+2", depth))
	}
	n := (depth - 2) / 6
	rng := tensor.NewRNG(cfg.Seed)
	widths := []int{cfg.width(16), cfg.width(32), cfg.width(64)}

	net := nn.NewSequential(fmt.Sprintf("resnet%d", depth))
	net.Append(
		cfg.conv("conv1", 3, widths[0], 3, 1, 1, false, rng),
		nn.NewBatchNorm2D("bn1", widths[0]),
		cfg.act("act1"),
	)
	inC := widths[0]
	for stage := 0; stage < 3; stage++ {
		outC := widths[stage]
		for b := 0; b < n; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			prefix := fmt.Sprintf("s%db%d", stage+1, b)
			body := nn.NewSequential(prefix+".body",
				cfg.conv(prefix+".conv1", inC, outC, 3, stride, 1, false, rng),
				nn.NewBatchNorm2D(prefix+".bn1", outC),
				cfg.act(prefix+".act1"),
				cfg.conv(prefix+".conv2", outC, outC, 3, 1, 1, false, rng),
				nn.NewBatchNorm2D(prefix+".bn2", outC),
			)
			var shortcut nn.Module
			if stride != 1 || inC != outC {
				shortcut = nn.NewSequential(prefix+".sc",
					cfg.conv(prefix+".scconv", inC, outC, 1, stride, 0, false, rng),
					nn.NewBatchNorm2D(prefix+".scbn", outC),
				)
			}
			net.Append(
				nn.NewResidual(prefix, body, shortcut, false),
				cfg.act(prefix+".act2"),
			)
			inC = outC
		}
	}
	net.Append(
		nn.NewGlobalAvgPool2D("gap"),
		nn.NewLinear("fc", inC, cfg.Classes, rng),
	)
	return net
}

// vggPlan is the CIFAR VGG-16 channel plan; 0 marks a 2×2 max-pool.
var vggPlan = []int{64, 64, 0, 128, 128, 0, 256, 256, 256, 0, 512, 512, 512, 0, 512, 512, 512, 0}

// VGG16 builds the CIFAR variant of VGG-16: 13 conv layers in five pooled
// groups followed by a single fully connected classifier.
func VGG16(cfg Config) *nn.Sequential {
	rng := tensor.NewRNG(cfg.Seed)
	net := nn.NewSequential("vgg16")
	inC := 3
	ci, pi := 0, 0
	for _, w := range vggPlan {
		if w == 0 {
			pi++
			net.Append(nn.NewMaxPool2D(fmt.Sprintf("pool%d", pi), 2, 2))
			continue
		}
		ci++
		outC := cfg.width(w)
		net.Append(
			cfg.conv(fmt.Sprintf("conv%d", ci), inC, outC, 3, 1, 1, false, rng),
			nn.NewBatchNorm2D(fmt.Sprintf("bn%d", ci), outC),
			cfg.act(fmt.Sprintf("act%d", ci)),
		)
		inC = outC
	}
	net.Append(
		nn.NewFlatten("flatten"),
		nn.NewLinear("fc", inC, cfg.Classes, rng), // 32/2^5 = 1×1 spatial
	)
	return net
}

// DenseNet builds a CIFAR DenseNet-40-style network: three dense blocks of
// 12 growth layers (pre-activation BN-ReLU-conv3×3) separated by 1×1
// compression transitions with average pooling.
func DenseNet(cfg Config) *nn.Sequential {
	const (
		blocks        = 3
		layersPer     = 12
		growthBase    = 12
		initialBase   = 16
		compressRatio = 0.5
	)
	rng := tensor.NewRNG(cfg.Seed)
	growth := cfg.width(growthBase)
	inC := cfg.width(initialBase)

	net := nn.NewSequential("densenet")
	net.Append(cfg.conv("conv0", 3, inC, 3, 1, 1, false, rng))
	for b := 0; b < blocks; b++ {
		for l := 0; l < layersPer; l++ {
			prefix := fmt.Sprintf("d%dl%d", b+1, l)
			body := nn.NewSequential(prefix+".body",
				nn.NewBatchNorm2D(prefix+".bn", inC),
				cfg.act(prefix+".act"),
				cfg.conv(prefix+".conv", inC, growth, 3, 1, 1, false, rng),
			)
			net.Append(nn.NewConcatGrowth(prefix, body))
			inC += growth
		}
		if b < blocks-1 {
			prefix := fmt.Sprintf("t%d", b+1)
			outC := int(float64(inC) * compressRatio)
			if outC < 4 {
				outC = 4
			}
			net.Append(
				nn.NewBatchNorm2D(prefix+".bn", inC),
				cfg.act(prefix+".act"),
				cfg.conv(prefix+".conv", inC, outC, 1, 1, 0, false, rng),
				nn.NewAvgPool2D(prefix+".pool", 2, 2),
			)
			inC = outC
		}
	}
	net.Append(
		nn.NewBatchNorm2D("bnF", inC),
		cfg.act("actF"),
		nn.NewGlobalAvgPool2D("gap"),
		nn.NewLinear("fc", inC, cfg.Classes, rng),
	)
	return net
}

// LeNet5 builds the classic LeNet-5 (for 28×28 single-channel inputs),
// used by the paper's Figure 1 illustration.
func LeNet5(cfg Config) *nn.Sequential {
	rng := tensor.NewRNG(cfg.Seed)
	return nn.NewSequential("lenet5",
		cfg.conv("conv1", 1, 6, 5, 1, 2, true, rng),
		cfg.act("act1"),
		nn.NewMaxPool2D("pool1", 2, 2),
		cfg.conv("conv2", 6, 16, 5, 1, 0, true, rng),
		cfg.act("act2"),
		nn.NewMaxPool2D("pool2", 2, 2),
		nn.NewFlatten("flatten"),
		nn.NewLinear("fc1", 16*5*5, 120, rng),
		cfg.act("act3"),
		nn.NewLinear("fc2", 120, 84, rng),
		cfg.act("act4"),
		nn.NewLinear("fc3", 84, cfg.Classes, rng),
	)
}
