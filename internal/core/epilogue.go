package core

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Epilogue describes the layer tail — bias add, batch-norm affine, and
// quantizing activation — fused into the executor so the conv's outputs
// are requantized to packed INT4 codes in-register instead of being
// materialized as float32, dequantized, and re-coded by the next layer.
// The operations are applied in the exact float order of the unfused
// modules (Conv2D bias add, BatchNorm2D eval affine, QuantReLU), so the
// emitted codes are bit-identical to what the float path's next-layer
// ActCodes would recover.
type Epilogue struct {
	// Conv supplies the bias (nil Bias means no bias add).
	Conv *nn.Conv2D
	// BN, when non-nil, contributes the eval-mode per-channel affine. Its
	// parameters are re-read on every conv call, so hot-reloaded weights
	// are picked up without rebuilding the epilogue.
	BN *nn.BatchNorm2D
	// Act requantizes the post-affine value to an unsigned code.
	Act quant.Requant
}

// epiEval is the per-call evaluated form of an Epilogue: bias and affine
// snapshots taken at conv time (hot-reload safety), applied per output as
// code(v, oc).
type epiEval struct {
	bias         []float32
	scale, shift []float32
	act          quant.Requant
}

func (ep *Epilogue) eval() *epiEval {
	if lv := ep.Act.Levels(); lv <= 0 || lv > 15 {
		panic(fmt.Sprintf("core: epilogue activation levels %v do not fit a packed nibble", lv))
	}
	ev := &epiEval{act: ep.Act}
	if ep.Conv != nil && ep.Conv.Bias != nil {
		ev.bias = ep.Conv.Bias.W.Data
	}
	if ep.BN != nil {
		ev.scale, ev.shift = ep.BN.EvalAffine()
	}
	return ev
}

// code applies the fused tail to one output value of channel oc. Each step
// uses the same float32 expression as the module it replaces, so the
// result is bit-identical to running the unfused module chain.
func (ev *epiEval) code(v float32, oc int) uint8 {
	if ev.bias != nil {
		v += ev.bias[oc]
	}
	if ev.scale != nil {
		v = v*ev.scale[oc] + ev.shift[oc]
	}
	return ev.act.Code(v)
}

// ConvPacked runs the ODQ convolution directly on packed INT4 activation
// codes — the inter-layer format of the quantized-domain pipeline — and
// returns the next layer's packed codes via the fused epilogue. The input
// codes are interpreted on the unsigned 4-bit activation grid (scale
// 1/15), exactly what quant.ActCodes would produce from the dequantized
// tensor, so the result is bit-identical to the float round-trip.
func (e *Exec) ConvPacked(px *tensor.PackedI4, layer *nn.Conv2D, epi *Epilogue) *tensor.PackedI4 {
	if e.bits != 4 {
		panic(fmt.Sprintf("core: ConvPacked requires a 4-bit executor, have %d", e.bits))
	}
	if epi == nil {
		panic("core: ConvPacked requires an epilogue")
	}
	qx := px.UnpackInt(1 / float32(quant.ActLevels(e.bits)))
	_, out := e.convQ(qx, layer, epi, nil)
	return out
}

// ConvFused runs the ODQ convolution on a float input but emits packed
// INT4 codes through the fused epilogue — the entry layer of the
// quantized-domain pipeline (and any layer whose predecessor could not
// stay packed).
func (e *Exec) ConvFused(x *tensor.Tensor, layer *nn.Conv2D, epi *Epilogue) *tensor.PackedI4 {
	if epi == nil {
		panic("core: ConvFused requires an epilogue")
	}
	qx := quant.ActCodes(x, e.bits)
	_, out := e.convQ(qx, layer, epi, nil)
	return out
}
