// Package core implements ODQ — output-directed dynamic quantization — the
// primary contribution of the paper. Inputs and weights are quantized to
// k bits (4 in the paper) and split into high-order and low-order parts.
// A lightweight *sensitivity predictor* convolves only the high parts
// (I_HBS × W_HBS, INT2 MACs) and thresholds the partial result into a
// per-output sensitivity bit mask. The *result executor* then computes the
// remaining three partial products (Eq. 3) only for outputs predicted
// sensitive; insensitive outputs keep just the predictor term.
//
// The executor here is numerically exact with respect to that definition:
// sensitive outputs equal the full INT-k convolution bit-for-bit, while
// insensitive outputs carry only the high×high partial. The default
// execution path runs the predictor and the sparse executor on bit-planar
// AND+POPCNT kernels (internal/tensor.Bitplanes) — the software analogue
// of the paper's multi-precision PE array — and stays bit-identical to the
// legacy int-GEMM predictor (retained behind WithIntGEMMPredictor) and to
// the dense compute-then-select reference (WithDenseReference), because
// every integer reduction is exact and the float fusion is shared.
package core

import (
	"fmt"
	"sync"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// ODQ telemetry handles. Partial-product counters mirror the paper's cost
// accounting: the predictor pays one high×high MAC per output tap, the
// executor pays the three remaining partials only for sensitive outputs.
var (
	mODQConvs         = telemetry.GetCounter("odq.convs")
	mODQPredMACs      = telemetry.GetCounter("odq.predictor.partial_products")
	mODQExecMACs      = telemetry.GetCounter("odq.executor.partial_products")
	mODQCacheHits     = telemetry.GetCounter("odq.wcache.hits")
	mODQCacheMisses   = telemetry.GetCounter("odq.wcache.misses")
	mODQInvalidations = telemetry.GetCounter("odq.wcache.invalidations")
)

// Exec is the ODQ convolution executor. All configuration is fixed at
// construction time through Option values; the only mutable state is the
// weight-code cache, the embedded Profiler, and the instrumentation
// accumulators, each guarded by its own lock — so one Exec is safe for
// concurrent Conv calls.
type Exec struct {
	// bits is the total quantization width (4 in the paper); predBits is
	// the width of the high-order part used by the sensitivity predictor
	// (2 in the paper).
	bits     int
	predBits int
	// threshold is the output-sensitivity threshold in units of each
	// sample's mean |predictor output| within the layer (the paper
	// derives thresholds from per-layer output distributions and then
	// uses one value for the whole network, §3/§6.4). An output is
	// sensitive when its |predictor partial| ≥ threshold × mean; 0 marks
	// everything sensitive. Per-sample normalization makes inference
	// batch-invariant (a sample's result never depends on its
	// batch-mates), which the serving layer relies on for bit-identical
	// dynamic batching. layerThresholds optionally overrides it per
	// layer for the per-layer ablation.
	threshold       float32
	layerThresholds map[string]float32
	// noWeightCache disables the per-layer weight-code cache; set during
	// threshold-aware retraining, when weights change every step.
	noWeightCache bool
	// collectPrecision additionally measures per-layer |float − ODQ|
	// precision loss (the §6.1 per-layer list), at the cost of a
	// reference convolution per layer.
	collectPrecision bool
	// dense selects the dense-compute-then-select reference path instead
	// of the sparse executor (parity tests, benchmarks).
	dense bool
	// noBitplane selects the legacy int-GEMM predictor and scalar sparse
	// executor instead of the bitplane kernels (benchmarks, ablation).
	noBitplane bool
	// workers caps result-generation parallelism; 0 means the full
	// shared pool, 1 forces serial execution.
	workers int

	quant.Profiler

	mu        sync.Mutex
	cacheGen  uint64
	wcache    map[*nn.Conv2D]*weightCodes
	precision map[string]*PrecisionStat
	precOrder []string

	distMu      sync.Mutex
	collectDist bool
	dist        []float32
}

// Option configures an Exec at construction time.
type Option func(*Exec)

// WithBits sets the total quantization width (default 4).
func WithBits(bits int) Option {
	return func(e *Exec) { e.bits = bits }
}

// WithPredBits sets the sensitivity-predictor width (default 2).
func WithPredBits(bits int) Option {
	return func(e *Exec) { e.predBits = bits }
}

// WithLayerThresholds overrides the network-wide threshold for specific
// conv layers (keyed by layer name). The map is copied.
func WithLayerThresholds(m map[string]float32) Option {
	return func(e *Exec) {
		cp := make(map[string]float32, len(m))
		for k, v := range m {
			cp[k] = v
		}
		e.layerThresholds = cp
	}
}

// WithPrecisionCollection measures per-layer |float − ODQ| loss on every
// Conv (costs one reference convolution per layer call).
func WithPrecisionCollection() Option {
	return func(e *Exec) { e.collectPrecision = true }
}

// WithoutWeightCache disables weight-code caching; use while weights are
// being retrained and change between steps.
func WithoutWeightCache() Option {
	return func(e *Exec) { e.noWeightCache = true }
}

// WithWorkers caps the result-generation parallelism at n goroutines
// (1 = serial; 0 / unset = the full shared pool).
func WithWorkers(n int) Option {
	return func(e *Exec) { e.workers = n }
}

// WithProfiling enables per-layer profile recording from construction.
// Call Reset before the measured pass if earlier (calibration, training)
// Conv calls should not count.
func WithProfiling() Option {
	return func(e *Exec) { e.EnableProfiling() }
}

// WithMaskRecording enables profiling and retains per-output sensitivity
// masks for the accelerator simulator.
func WithMaskRecording() Option {
	return func(e *Exec) { e.EnableMaskRecording() }
}

// WithDenseReference switches result generation to the dense
// compute-then-select reference implementation. The sparse default is
// bit-identical; this path exists for parity tests and benchmarks.
func WithDenseReference() Option {
	return func(e *Exec) { e.dense = true }
}

// WithIntGEMMPredictor selects the legacy execution path — a batched
// int-GEMM predictor followed by the scalar sparse executor — instead of
// the default bitplane AND+POPCNT kernels. Bit-identical to the default;
// kept for benchmarks and as an ablation baseline.
func WithIntGEMMPredictor() Option {
	return func(e *Exec) { e.noBitplane = true }
}

// PrecisionStat accumulates per-layer precision loss of ODQ relative to
// the float convolution.
type PrecisionStat struct {
	Name  string
	Index int
	Sum   float64
	Count int64
	Max   float64
}

// Mean returns the average absolute precision loss.
func (p *PrecisionStat) Mean() float64 {
	if p.Count == 0 {
		return 0
	}
	return p.Sum / float64(p.Count)
}

// NewExec builds an ODQ executor with the paper's defaults (INT4 codes,
// 2-bit predictor) modified by the given options. It panics on an invalid
// bits/predBits combination.
func NewExec(threshold float32, opts ...Option) *Exec {
	e := &Exec{
		bits:      4,
		predBits:  2,
		threshold: threshold,
		wcache:    make(map[*nn.Conv2D]*weightCodes),
		precision: make(map[string]*PrecisionStat),
	}
	for _, o := range opts {
		o(e)
	}
	if e.bits < 2 || e.bits > 16 {
		panic(fmt.Sprintf("core: NewExec bits %d out of range [2,16]", e.bits))
	}
	if e.predBits < 1 || e.predBits >= e.bits {
		panic(fmt.Sprintf("core: NewExec predBits %d out of range [1,bits)", e.predBits))
	}
	return e
}

// Bits returns the total quantization width.
func (e *Exec) Bits() int { return e.bits }

// PredBits returns the sensitivity-predictor width.
func (e *Exec) PredBits() int { return e.predBits }

// Threshold returns the current network-wide sensitivity threshold (the
// threshold search in this package adjusts it between passes).
func (e *Exec) Threshold() float32 { return e.threshold }

// lowBits returns the width of the low-order part.
func (e *Exec) lowBits() int { return e.bits - e.predBits }

// weightCodes bundles a layer's cached high/low weight-code split with the
// bit-planar forms the default kernels consume (one row per output
// channel, InC·K·K lanes). The bitplanes are skipped on the legacy and
// dense paths, which read the row-major int32 codes directly; the
// high-density executor branch also reads the row-major codes, as the A
// operand of its wide int-GEMM partials.
type weightCodes struct {
	hi, lo     *tensor.IntTensor
	hiBP, loBP *tensor.Bitplanes
}

func (e *Exec) buildWeightCodes(layer *nn.Conv2D) *weightCodes {
	q := quant.WeightCodes(layer.EffectiveWeight(), e.bits)
	hi, lo := quant.SplitCodesRounded(q, e.lowBits(), true)
	wc := &weightCodes{hi: hi, lo: lo}
	if !e.dense && !e.noBitplane {
		outC := hi.Shape[0]
		lanes := hi.Shape[1] * hi.Shape[2] * hi.Shape[3]
		wc.hiBP = tensor.NewBitplanes(outC, lanes, hi.Bits, true)
		wc.hiBP.PackRows(hi.Data)
		wc.loBP = tensor.NewBitplanes(outC, lanes, lo.Bits, true)
		wc.loBP.PackRows(lo.Data)
	}
	return wc
}

// weights returns the cached weight codes for a layer. Quantization runs
// outside the lock; the result is stored only if no InvalidateCache
// intervened (generation check), so a retraining step can never have its
// invalidation undone by an in-flight Conv that read the old
// EffectiveWeight.
func (e *Exec) weights(layer *nn.Conv2D) *weightCodes {
	if e.noWeightCache {
		return e.buildWeightCodes(layer)
	}
	e.mu.Lock()
	if wc, ok := e.wcache[layer]; ok {
		e.mu.Unlock()
		mODQCacheHits.Inc()
		return wc
	}
	gen := e.cacheGen
	e.mu.Unlock()
	mODQCacheMisses.Inc()

	wc := e.buildWeightCodes(layer)

	e.mu.Lock()
	defer e.mu.Unlock()
	if cached, ok := e.wcache[layer]; ok {
		return cached
	}
	if e.cacheGen == gen {
		e.wcache[layer] = wc
	}
	return wc
}

// InvalidateCache drops cached weight codes. The retraining contract:
// call it after every weight mutation BEFORE issuing new Conv calls.
// Conv calls in flight across the invalidation may still return results
// from the pre-update weights, but generation tracking guarantees they
// cannot re-populate the cache with stale codes.
func (e *Exec) InvalidateCache() {
	mODQInvalidations.Inc()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cacheGen++
	e.wcache = make(map[*nn.Conv2D]*weightCodes)
}

// PrecisionStats returns per-layer precision-loss records in layer order.
func (e *Exec) PrecisionStats() []*PrecisionStat {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*PrecisionStat, 0, len(e.precOrder))
	for _, n := range e.precOrder {
		out = append(out, e.precision[n])
	}
	return out
}

// ResetPrecision clears the precision-loss records.
func (e *Exec) ResetPrecision() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.precision = make(map[string]*PrecisionStat)
	e.precOrder = nil
}

// fuse combines the predictor partial with the three executor partials
// for a sensitive output. Every execution path calls this single function,
// so the float rounding (including any FMA contraction the compiler
// chooses) is identical and the paths stay bit-exact with each other and
// with the original implementation.
func fuse(pred, hl, lh, ll int64, predScale, sHL, sLH, sLL float32) float32 {
	v := float32(pred) * predScale
	v += float32(hl)*sHL + float32(lh)*sLH + float32(ll)*sLL
	return v
}

// Conv implements nn.ConvExecutor: sensitivity prediction over the
// high-order parts followed by result generation for sensitive outputs.
func (e *Exec) Conv(x *tensor.Tensor, layer *nn.Conv2D) *tensor.Tensor {
	qx := quant.ActCodes(x, e.bits)
	out, _ := e.convQ(qx, layer, nil, x)
	return out
}

// convQ is the shared conv body over integer activation codes. With a nil
// epilogue it returns the raw float partial-sum tensor (bias is NOT
// applied — nn.Conv2D.Forward adds it, as before). With an epilogue it
// returns packed INT4 codes of the requantized activation instead, and no
// float tensor is materialized on the default path. xRef, when non-nil, is
// the original float input used for precision-loss collection.
func (e *Exec) convQ(qx *tensor.IntTensor, layer *nn.Conv2D, epi *Epilogue, xRef *tensor.Tensor) (*tensor.Tensor, *tensor.PackedI4) {
	spConv := telemetry.StartSpan("odq.conv")
	defer spConv.End()
	mODQConvs.Inc()
	n := qx.Shape[0]
	xh, xl := quant.SplitCodesRounded(qx, e.lowBits(), false)
	wc := e.weights(layer)
	wh, wl := wc.hi, wc.lo

	g := quant.AccumGeometry(xh, wh, layer.Stride, layer.Pad)
	perSample := g.TotalOutputs()
	total := n * perSample
	predScale := xh.Scale * wh.Scale
	th := e.threshold
	if v, ok := e.layerThresholds[layer.Name]; ok {
		th = v
	}
	sHL := xh.Scale * wl.Scale
	sLH := xl.Scale * wh.Scale
	sLL := xl.Scale * wl.Scale

	mask := make([]bool, total)
	var ev *epiEval
	var codes []uint8
	if epi != nil {
		ev = epi.eval()
		codes = tensor.GetUint8(total)
	}
	var out *tensor.Tensor
	if epi == nil || e.dense || e.noBitplane {
		out = tensor.New(n, g.OutC, g.OutH, g.OutW)
	}

	var sensitive int64
	if e.dense || e.noBitplane {
		// Legacy two-stage path: batched int-GEMM predictor, then dense
		// or scalar-sparse result generation, then (optionally) the
		// epilogue as a post-pass over the float tensor.
		spPred := telemetry.StartSpan("odq.predictor")
		predAcc := tensor.GetInt64(total)
		quant.ConvAccumInto(predAcc, xh, wh, layer.Stride, layer.Pad)
		for s := 0; s < n; s++ {
			e.maskSample(predAcc[s*perSample:(s+1)*perSample], mask[s*perSample:(s+1)*perSample], predScale, th)
		}
		sensitive = quant.MaskDensity(mask)
		spPred.End()

		spExec := telemetry.StartSpan("odq.executor")
		if e.dense {
			e.resultDense(out, predAcc, mask, xh, xl, wh, wl, layer, predScale, sHL, sLH, sLL)
		} else {
			e.resultSparse(out, predAcc, mask, xh, xl, wh, wl, g, predScale, sHL, sLH, sLL)
		}
		tensor.PutInt64(predAcc)
		spExec.End()
		if ev != nil {
			cols := g.ColCols()
			for i := range out.Data {
				codes[i] = ev.code(out.Data[i], (i/cols)%g.OutC)
			}
		}
	} else {
		sensitive = e.resultBitplane(out, codes, ev, mask, xh, xl, wc, g, predScale, th, sHL, sLH, sLL)
	}
	if telemetry.Enabled() {
		macsPerOut := int64(g.ColRows())
		mODQPredMACs.Add(int64(total) * macsPerOut)
		mODQExecMACs.Add(3 * sensitive * macsPerOut)
	}

	e.Record(&quant.LayerProfile{
		Name:             layer.Name,
		Geom:             g,
		Batch:            n,
		TotalOutputs:     int64(total),
		SensitiveOutputs: sensitive,
		TotalMACs:        int64(n) * g.TotalMACs(),
		Mask:             mask,
	})

	if e.collectPrecision && xRef != nil && epi == nil {
		e.collectPrecisionLoss(xRef, out, layer, g)
	}
	var packed *tensor.PackedI4
	if epi != nil {
		packed = tensor.NewPackedI4(n, g.OutC, g.OutH, g.OutW)
		tensor.PackI4Into(codes[:total], packed.Data)
		tensor.PutUint8(codes)
	}
	return out, packed
}

// maskSample thresholds one sample's predictor accumulators into its
// sensitivity mask. The threshold is relative to the sample's mean
// |predictor output| in the layer (the paper derives its threshold from
// per-layer output distributions, §3); this keeps one network-wide
// threshold value meaningful across layers whose raw output scales
// differ. Normalizing per sample (not per batch) makes every sample's
// mask — and therefore its output — independent of whatever it happens to
// be batched with, so a dynamically batched serving pass is bit-identical
// to running each request alone.
func (e *Exec) maskSample(seg []int64, mseg []bool, predScale, th float32) {
	var meanAbs float64
	for _, a := range seg {
		v := float64(a) * float64(predScale)
		if v < 0 {
			v = -v
		}
		meanAbs += v
	}
	if len(seg) > 0 {
		meanAbs /= float64(len(seg))
	}
	cut := float32(meanAbs) * th
	for i, a := range seg {
		v := float32(a) * predScale
		if v < 0 {
			v = -v
		}
		if v >= cut {
			mseg[i] = true
		}
	}
	if e.collectDist {
		e.sampleDist(seg, predScale, float32(meanAbs))
	}
}

// bitplaneGEMMCutover is the realized-density point where the executor
// switches from per-output bitplane dot products to batched int-GEMM
// partials. Below it, skipping insensitive outputs wins; above it, the
// blocked (AVX2 where available) GEMM's throughput beats per-output
// scatter even though it computes everything. Both branches are exact
// integer arithmetic into the same fuse(), so the switch is invisible in
// the output — it only moves work.
const bitplaneGEMMCutover = 0.45

// resultBitplane is the default execution path: per sample, the high
// activation codes are gathered receptive-field-at-a-time and bitplane-
// packed in one pass (no transposed im2col matrix is ever materialized),
// the sensitivity predictor runs as AND+POPCNT row products
// (tensor.BitplaneMulRow), and the executor computes the three remaining
// partials only as directed by the realized mask — fused per-output
// bitplane dots (tensor.BitplaneDot3) at low density, wide int-GEMM
// partials (weight codes × im2col, the same orientation the dense path
// uses) above bitplaneGEMMCutover. Exact integer arithmetic end to end
// keeps it bit-identical to the int-GEMM paths; the shared fuse() keeps
// the float combination identical. Writes requantized codes directly
// when ev is non-nil (fused epilogue), float partial sums into out
// otherwise. Returns the sensitive count.
func (e *Exec) resultBitplane(out *tensor.Tensor, codes []uint8, ev *epiEval, mask []bool,
	xh, xl *tensor.IntTensor, wc *weightCodes, g tensor.ConvGeom,
	predScale, th, sHL, sLH, sLL float32) int64 {
	n := xh.Shape[0]
	rows, cols := g.ColRows(), g.ColCols()
	perSample := g.TotalOutputs()
	per := g.InC * g.InH * g.InW
	pool := tensor.DefaultPool()
	outC := g.OutC
	whBP, wlBP := wc.hiBP, wc.loBP

	predAcc := tensor.GetInt64(perSample)
	xhBP := &tensor.Bitplanes{R: cols, L: rows, P: xh.Bits, W: tensor.BitplaneWords(rows),
		Data: tensor.GetUint64(tensor.BitplaneSize(cols, rows, xh.Bits))}

	// Executor scratch, allocated lazily: the bitplane branch needs the
	// packed low codes, the GEMM branch an im2col column matrix plus
	// three accumulator planes. A forward whose samples all land on one
	// side never pays for the other.
	var colBuf []int32
	var xlBP *tensor.Bitplanes
	var hlAcc, lhAcc, llAcc []int64

	var sensitive int64
	for s := 0; s < n; s++ {
		spPred := telemetry.StartSpan("odq.predictor")
		tensor.Im2colIntTPack(xh.Data[s*per:(s+1)*per], g, nil, xhBP)
		pool.ParallelLimited(e.workers, outC, func(oc int) {
			tensor.BitplaneMulRow(predAcc[oc*cols:(oc+1)*cols], whBP, oc, xhBP)
		})
		mseg := mask[s*perSample : (s+1)*perSample]
		e.maskSample(predAcc, mseg, predScale, th)
		spPred.End()

		sens := 0
		for _, m := range mseg {
			if m {
				sens++
			}
		}
		sensitive += int64(sens)

		spExec := telemetry.StartSpan("odq.executor")
		sampleBase := s * perSample
		if float64(sens) >= bitplaneGEMMCutover*float64(perSample) {
			if hlAcc == nil {
				hlAcc = tensor.GetInt64(perSample)
				lhAcc = tensor.GetInt64(perSample)
				llAcc = tensor.GetInt64(perSample)
			}
			if colBuf == nil {
				colBuf = tensor.GetInt32(rows * cols)
			}
			tensor.Im2colInt(xh.Data[s*per:(s+1)*per], g, colBuf)
			tensor.GemmInt(wc.lo.Data, colBuf, hlAcc, outC, rows, cols)
			tensor.Im2colInt(xl.Data[s*per:(s+1)*per], g, colBuf)
			tensor.GemmInt(wc.hi.Data, colBuf, lhAcc, outC, rows, cols)
			tensor.GemmInt(wc.lo.Data, colBuf, llAcc, outC, rows, cols)
			pool.ParallelLimited(e.workers, outC, func(oc int) {
				base := oc * cols
				for j := 0; j < cols; j++ {
					i := base + j
					var v float32
					if !mseg[i] {
						v = float32(predAcc[i]) * predScale
					} else {
						v = fuse(predAcc[i], hlAcc[i], lhAcc[i], llAcc[i], predScale, sHL, sLH, sLL)
					}
					if ev != nil {
						codes[sampleBase+i] = ev.code(v, oc)
					} else {
						out.Data[sampleBase+i] = v
					}
				}
			})
		} else {
			if xlBP == nil {
				xlBP = &tensor.Bitplanes{R: cols, L: rows, P: xl.Bits, W: tensor.BitplaneWords(rows), Signed: true,
					Data: tensor.GetUint64(tensor.BitplaneSize(cols, rows, xl.Bits))}
			}
			tensor.Im2colIntTPack(xl.Data[s*per:(s+1)*per], g, nil, xlBP)
			pool.ParallelLimited(e.workers, outC, func(oc int) {
				base := oc * cols
				for j := 0; j < cols; j++ {
					i := base + j
					var v float32
					if !mseg[i] {
						v = float32(predAcc[i]) * predScale
					} else {
						hl, lh, ll := tensor.BitplaneDot3(xhBP, xlBP, j, whBP, wlBP, oc)
						v = fuse(predAcc[i], hl, lh, ll, predScale, sHL, sLH, sLL)
					}
					if ev != nil {
						codes[sampleBase+i] = ev.code(v, oc)
					} else {
						out.Data[sampleBase+i] = v
					}
				}
			})
		}
		spExec.End()
	}

	tensor.PutInt64(predAcc)
	tensor.PutUint64(xhBP.Data)
	if colBuf != nil {
		tensor.PutInt32(colBuf)
	}
	if xlBP != nil {
		tensor.PutUint64(xlBP.Data)
	}
	if hlAcc != nil {
		tensor.PutInt64(hlAcc)
		tensor.PutInt64(lhAcc)
		tensor.PutInt64(llAcc)
	}
	return sensitive
}

// resultSparse is the legacy sparse result generator: the HL/LH/LL
// partials are computed only for sensitive outputs, as per-output scalar
// dot products over the transposed im2col matrix (one contiguous row per
// output position), parallel across output channels on the shared worker
// pool.
func (e *Exec) resultSparse(out *tensor.Tensor, predAcc []int64, mask []bool,
	xh, xl, wh, wl *tensor.IntTensor, g tensor.ConvGeom,
	predScale, sHL, sLH, sLL float32) {
	n := xh.Shape[0]
	rows, cols := g.ColRows(), g.ColCols()
	xhT := tensor.GetInt32(rows * cols)
	xlT := tensor.GetInt32(rows * cols)
	per := g.InC * g.InH * g.InW
	pool := tensor.DefaultPool()
	for s := 0; s < n; s++ {
		tensor.Im2colIntT(xh.Data[s*per:(s+1)*per], g, xhT)
		tensor.Im2colIntT(xl.Data[s*per:(s+1)*per], g, xlT)
		sampleBase := s * g.OutC * cols
		pool.ParallelLimited(e.workers, g.OutC, func(oc int) {
			whRow := wh.Data[oc*rows : (oc+1)*rows]
			wlRow := wl.Data[oc*rows : (oc+1)*rows]
			base := sampleBase + oc*cols
			for j := 0; j < cols; j++ {
				i := base + j
				if !mask[i] {
					out.Data[i] = float32(predAcc[i]) * predScale
					continue
				}
				xhRow := xhT[j*rows : (j+1)*rows]
				xlRow := xlT[j*rows : (j+1)*rows]
				var hl, lh, ll int64
				for p := 0; p < rows; p++ {
					xhv := int64(xhRow[p])
					xlv := int64(xlRow[p])
					whv := int64(whRow[p])
					wlv := int64(wlRow[p])
					hl += xhv * wlv
					lh += xlv * whv
					ll += xlv * wlv
				}
				out.Data[i] = fuse(predAcc[i], hl, lh, ll, predScale, sHL, sLH, sLL)
			}
		})
	}
	tensor.PutInt32(xhT)
	tensor.PutInt32(xlT)
}

// resultDense is the dense-compute-then-select reference: all three
// partials are computed for every output and discarded where the mask is
// false. Kept (behind WithDenseReference) as the parity oracle for the
// sparse paths.
func (e *Exec) resultDense(out *tensor.Tensor, predAcc []int64, mask []bool,
	xh, xl, wh, wl *tensor.IntTensor, layer *nn.Conv2D,
	predScale, sHL, sLH, sLL float32) {
	total := len(predAcc)
	hlAcc := tensor.GetInt64(total)
	lhAcc := tensor.GetInt64(total)
	llAcc := tensor.GetInt64(total)
	quant.ConvAccumInto(hlAcc, xh, wl, layer.Stride, layer.Pad)
	quant.ConvAccumInto(lhAcc, xl, wh, layer.Stride, layer.Pad)
	quant.ConvAccumInto(llAcc, xl, wl, layer.Stride, layer.Pad)
	for i := range predAcc {
		if mask[i] {
			out.Data[i] = fuse(predAcc[i], hlAcc[i], lhAcc[i], llAcc[i], predScale, sHL, sLH, sLL)
		} else {
			out.Data[i] = float32(predAcc[i]) * predScale
		}
	}
	tensor.PutInt64(hlAcc)
	tensor.PutInt64(lhAcc)
	tensor.PutInt64(llAcc)
}

func (e *Exec) collectPrecisionLoss(x, odqOut *tensor.Tensor, layer *nn.Conv2D, g tensor.ConvGeom) {
	ref := floatConv(x, layer.EffectiveWeight(), g)
	e.mu.Lock()
	defer e.mu.Unlock()
	stat, ok := e.precision[layer.Name]
	if !ok {
		stat = &PrecisionStat{Name: layer.Name, Index: len(e.precOrder)}
		e.precision[layer.Name] = stat
		e.precOrder = append(e.precOrder, layer.Name)
	}
	for i := range ref.Data {
		d := float64(ref.Data[i] - odqOut.Data[i])
		if d < 0 {
			d = -d
		}
		stat.Sum += d
		stat.Count++
		if d > stat.Max {
			stat.Max = d
		}
	}
}

// sampleDist subsamples predictor magnitudes (normalized by the layer's
// mean |predictor output|, i.e. in threshold units) for threshold
// initialization.
func (e *Exec) sampleDist(acc []int64, scale, meanAbs float32) {
	if meanAbs == 0 {
		return
	}
	e.distMu.Lock()
	defer e.distMu.Unlock()
	stride := len(acc)/4096 + 1
	for i := 0; i < len(acc); i += stride {
		v := float32(acc[i]) * scale / meanAbs
		if v < 0 {
			v = -v
		}
		e.dist = append(e.dist, v)
	}
}

// SensitiveFraction returns the overall fraction of outputs predicted
// sensitive across the recorded profiles.
func (e *Exec) SensitiveFraction() float64 {
	var sens, tot int64
	for _, p := range e.Profiles() {
		sens += p.SensitiveOutputs
		tot += p.TotalOutputs
	}
	if tot == 0 {
		return 0
	}
	return float64(sens) / float64(tot)
}

// floatConv is the reference float convolution used by instrumentation.
func floatConv(x, w *tensor.Tensor, g tensor.ConvGeom) *tensor.Tensor {
	n := x.Shape[0]
	rows, cols := g.ColRows(), g.ColCols()
	out := tensor.New(n, g.OutC, g.OutH, g.OutW)
	per := g.InC * g.InH * g.InW
	tensor.DefaultPool().ParallelN(n, func(s int) {
		buf := tensor.GetFloat32(rows * cols)
		tensor.Im2col(x.Data[s*per:(s+1)*per], g, buf)
		tensor.Gemm(w.Data, buf, out.Data[s*g.OutC*cols:(s+1)*g.OutC*cols], g.OutC, rows, cols)
		tensor.PutFloat32(buf)
	})
	return out
}

var _ nn.ConvExecutor = (*Exec)(nil)
