// Package core implements ODQ — output-directed dynamic quantization — the
// primary contribution of the paper. Inputs and weights are quantized to
// k bits (4 in the paper) and split into high-order and low-order parts.
// A lightweight *sensitivity predictor* convolves only the high parts
// (I_HBS × W_HBS, INT2 MACs) and thresholds the partial result into a
// per-output sensitivity bit mask. The *result executor* then computes the
// remaining three partial products (Eq. 3) only for outputs predicted
// sensitive; insensitive outputs keep just the predictor term.
//
// The executor here is numerically exact with respect to that definition:
// sensitive outputs equal the full INT-k convolution bit-for-bit, while
// insensitive outputs carry only the high×high partial. Performance and
// energy are modeled by the accelerator simulator from the masks this
// package records — the same methodology the paper uses (§5.2).
package core

import (
	"sync"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Exec is the ODQ convolution executor.
type Exec struct {
	// Bits is the total quantization width (4 in the paper).
	Bits int
	// PredBits is the width of the high-order part used by the
	// sensitivity predictor (2 in the paper).
	PredBits int
	// Threshold is the output-sensitivity threshold in units of each
	// layer's mean |predictor output| (the paper derives thresholds
	// from per-layer output distributions and then uses one value for
	// the whole network, §3/§6.4). An output is sensitive when its
	// |predictor partial| ≥ Threshold × mean; 0 marks everything
	// sensitive.
	Threshold float32
	// LayerThresholds optionally overrides Threshold for specific layers
	// (keyed by conv-layer name). The paper deliberately uses one value
	// network-wide "which greatly simplifies the design" (§6.4); this
	// override exists for the per-layer ablation.
	LayerThresholds map[string]float32
	// NoWeightCache disables the per-layer weight-code cache; set it
	// during threshold-aware retraining, when weights change every step.
	NoWeightCache bool
	// CollectPrecision additionally measures per-layer |float − ODQ|
	// precision loss (the §6.1 per-layer list), at the cost of a
	// reference convolution per layer.
	CollectPrecision bool

	quant.Profiler

	mu        sync.Mutex
	wcacheHi  map[*nn.Conv2D]*tensor.IntTensor
	wcacheLo  map[*nn.Conv2D]*tensor.IntTensor
	precision map[string]*PrecisionStat
	precOrder []string

	distMu      sync.Mutex
	collectDist bool
	dist        []float32
}

// PrecisionStat accumulates per-layer precision loss of ODQ relative to
// the float convolution.
type PrecisionStat struct {
	Name  string
	Index int
	Sum   float64
	Count int64
	Max   float64
}

// Mean returns the average absolute precision loss.
func (p *PrecisionStat) Mean() float64 {
	if p.Count == 0 {
		return 0
	}
	return p.Sum / float64(p.Count)
}

// NewExec builds an ODQ executor with the paper's defaults (INT4 codes,
// 2-bit predictor).
func NewExec(threshold float32) *Exec {
	return &Exec{
		Bits:      4,
		PredBits:  2,
		Threshold: threshold,
		wcacheHi:  make(map[*nn.Conv2D]*tensor.IntTensor),
		wcacheLo:  make(map[*nn.Conv2D]*tensor.IntTensor),
		precision: make(map[string]*PrecisionStat),
	}
}

// lowBits returns the width of the low-order part.
func (e *Exec) lowBits() int { return e.Bits - e.PredBits }

func (e *Exec) weights(layer *nn.Conv2D) (hi, lo *tensor.IntTensor) {
	if e.NoWeightCache {
		q := quant.WeightCodes(layer.EffectiveWeight(), e.Bits)
		return quant.SplitCodesRounded(q, e.lowBits(), true)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if h, ok := e.wcacheHi[layer]; ok {
		return h, e.wcacheLo[layer]
	}
	q := quant.WeightCodes(layer.EffectiveWeight(), e.Bits)
	h, l := quant.SplitCodesRounded(q, e.lowBits(), true)
	e.wcacheHi[layer] = h
	e.wcacheLo[layer] = l
	return h, l
}

// InvalidateCache drops cached weight codes (call after weight updates).
func (e *Exec) InvalidateCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.wcacheHi = make(map[*nn.Conv2D]*tensor.IntTensor)
	e.wcacheLo = make(map[*nn.Conv2D]*tensor.IntTensor)
}

// PrecisionStats returns per-layer precision-loss records in layer order.
func (e *Exec) PrecisionStats() []*PrecisionStat {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*PrecisionStat, 0, len(e.precOrder))
	for _, n := range e.precOrder {
		out = append(out, e.precision[n])
	}
	return out
}

// ResetPrecision clears the precision-loss records.
func (e *Exec) ResetPrecision() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.precision = make(map[string]*PrecisionStat)
	e.precOrder = nil
}

// Conv implements nn.ConvExecutor: sensitivity prediction over the
// high-order parts followed by result generation for sensitive outputs.
func (e *Exec) Conv(x *tensor.Tensor, layer *nn.Conv2D) *tensor.Tensor {
	n := x.Shape[0]
	qx := quant.ActCodes(x, e.Bits)
	xh, xl := quant.SplitCodesRounded(qx, e.lowBits(), false)
	wh, wl := e.weights(layer)

	// Stage 1 — sensitivity prediction: high × high partial only. The
	// threshold is relative to the layer's mean |predictor output|
	// (the paper derives its threshold from each layer's output
	// distribution, §3); this keeps one network-wide threshold value
	// meaningful across layers whose raw output scales differ.
	predAcc, g := quant.ConvAccum(xh, wh, layer.Stride, layer.Pad)
	predScale := xh.Scale * wh.Scale
	total := len(predAcc)
	var meanAbs float64
	for _, a := range predAcc {
		v := float64(a) * float64(predScale)
		if v < 0 {
			v = -v
		}
		meanAbs += v
	}
	if total > 0 {
		meanAbs /= float64(total)
	}
	th := e.Threshold
	if v, ok := e.LayerThresholds[layer.Name]; ok {
		th = v
	}
	cut := float32(meanAbs) * th
	mask := make([]bool, total)
	sensitive := int64(0)
	for i, a := range predAcc {
		v := float32(a) * predScale
		if v < 0 {
			v = -v
		}
		if v >= cut {
			mask[i] = true
			sensitive++
		}
	}
	if e.collectDist {
		e.sampleDist(predAcc, predScale, float32(meanAbs))
	}

	// Stage 2 — result generation: remaining partials, kept only where
	// the mask says sensitive. (We compute them densely and select; the
	// arithmetic result is identical to the sparse computation, and the
	// skipped work is accounted for by the cycle simulator.)
	hlAcc, _ := quant.ConvAccum(xh, wl, layer.Stride, layer.Pad)
	lhAcc, _ := quant.ConvAccum(xl, wh, layer.Stride, layer.Pad)
	llAcc, _ := quant.ConvAccum(xl, wl, layer.Stride, layer.Pad)
	sHL := xh.Scale * wl.Scale
	sLH := xl.Scale * wh.Scale
	sLL := xl.Scale * wl.Scale

	out := tensor.New(n, g.OutC, g.OutH, g.OutW)
	for i := range predAcc {
		v := float32(predAcc[i]) * predScale
		if mask[i] {
			v += float32(hlAcc[i])*sHL + float32(lhAcc[i])*sLH + float32(llAcc[i])*sLL
		}
		out.Data[i] = v
	}

	e.Record(&quant.LayerProfile{
		Name:             layer.Name,
		Geom:             g,
		Batch:            n,
		TotalOutputs:     int64(total),
		SensitiveOutputs: sensitive,
		TotalMACs:        int64(n) * g.TotalMACs(),
		Mask:             mask,
	})

	if e.CollectPrecision {
		e.collectPrecision(x, out, layer, g)
	}
	return out
}

func (e *Exec) collectPrecision(x, odqOut *tensor.Tensor, layer *nn.Conv2D, g tensor.ConvGeom) {
	ref := floatConv(x, layer.EffectiveWeight(), g)
	e.mu.Lock()
	defer e.mu.Unlock()
	stat, ok := e.precision[layer.Name]
	if !ok {
		stat = &PrecisionStat{Name: layer.Name, Index: len(e.precOrder)}
		e.precision[layer.Name] = stat
		e.precOrder = append(e.precOrder, layer.Name)
	}
	for i := range ref.Data {
		d := float64(ref.Data[i] - odqOut.Data[i])
		if d < 0 {
			d = -d
		}
		stat.Sum += d
		stat.Count++
		if d > stat.Max {
			stat.Max = d
		}
	}
}

// sampleDist subsamples predictor magnitudes (normalized by the layer's
// mean |predictor output|, i.e. in threshold units) for threshold
// initialization.
func (e *Exec) sampleDist(acc []int64, scale, meanAbs float32) {
	if meanAbs == 0 {
		return
	}
	e.distMu.Lock()
	defer e.distMu.Unlock()
	stride := len(acc)/4096 + 1
	for i := 0; i < len(acc); i += stride {
		v := float32(acc[i]) * scale / meanAbs
		if v < 0 {
			v = -v
		}
		e.dist = append(e.dist, v)
	}
}

// SensitiveFraction returns the overall fraction of outputs predicted
// sensitive across the recorded profiles.
func (e *Exec) SensitiveFraction() float64 {
	var sens, tot int64
	for _, p := range e.Profiles() {
		sens += p.SensitiveOutputs
		tot += p.TotalOutputs
	}
	if tot == 0 {
		return 0
	}
	return float64(sens) / float64(tot)
}

// floatConv is the reference float convolution used by instrumentation.
func floatConv(x, w *tensor.Tensor, g tensor.ConvGeom) *tensor.Tensor {
	n := x.Shape[0]
	rows, cols := g.ColRows(), g.ColCols()
	out := tensor.New(n, g.OutC, g.OutH, g.OutW)
	buf := make([]float32, rows*cols)
	per := g.InC * g.InH * g.InW
	for s := 0; s < n; s++ {
		tensor.Im2col(x.Data[s*per:(s+1)*per], g, buf)
		tensor.Gemm(w.Data, buf, out.Data[s*g.OutC*cols:(s+1)*g.OutC*cols], g.OutC, rows, cols)
	}
	return out
}

var _ nn.ConvExecutor = (*Exec)(nil)
