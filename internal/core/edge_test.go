package core

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Edge-case and failure-injection coverage for the ODQ executor.

func TestODQZeroInput(t *testing.T) {
	rng := tensor.NewRNG(1)
	conv := nn.NewConv2D("c", 2, 3, 3, 1, 1, false, rng)
	e := NewExec(0.5, WithProfiling())
	conv.Exec = e
	out := conv.Forward(tensor.New(1, 2, 6, 6), false)
	for _, v := range out.Data {
		if v != 0 {
			t.Fatalf("zero input must give zero output, got %v", v)
		}
	}
	// With meanAbs 0, the cut is 0 and |0| >= 0: everything counts
	// sensitive — degenerate but well-defined.
	p := e.Profiles()[0]
	if p.SensitiveOutputs != p.TotalOutputs {
		t.Fatalf("zero-input sensitivity: %d/%d", p.SensitiveOutputs, p.TotalOutputs)
	}
}

func TestODQ1x1Conv(t *testing.T) {
	rng := tensor.NewRNG(2)
	conv := nn.NewConv2D("c", 4, 4, 1, 1, 0, false, rng)
	x := tensor.New(1, 4, 5, 5)
	rng.FillUniform(x, 0, 1)
	e := NewExec(-1) // all sensitive → must equal static INT4
	conv.Exec = e
	got := conv.Forward(x, false)
	conv.Exec = quant.NewStaticExec(4)
	want := conv.Forward(x, false)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("1x1 ODQ deviates from INT4 by %v", d)
	}
}

func TestODQNonSquareStride(t *testing.T) {
	rng := tensor.NewRNG(3)
	conv := nn.NewConv2D("c", 3, 5, 3, 2, 1, false, rng)
	x := tensor.New(2, 3, 9, 7)
	rng.FillUniform(x, 0, 1)
	e := NewExec(-1)
	conv.Exec = e
	got := conv.Forward(x, false)
	if got.Shape[2] != 5 || got.Shape[3] != 4 {
		t.Fatalf("strided non-square geometry wrong: %v", got.Shape)
	}
	conv.Exec = quant.NewStaticExec(4)
	want := conv.Forward(x, false)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("non-square ODQ deviates from INT4 by %v", d)
	}
}

func TestODQZeroWeights(t *testing.T) {
	rng := tensor.NewRNG(4)
	conv := nn.NewConv2D("c", 2, 2, 3, 1, 1, false, rng)
	conv.Weight.W.Zero()
	e := NewExec(0.5)
	conv.Exec = e
	x := tensor.New(1, 2, 5, 5)
	rng.FillUniform(x, 0, 1)
	out := conv.Forward(x, false)
	for _, v := range out.Data {
		if v != 0 {
			t.Fatalf("zero weights must give zero output, got %v", v)
		}
	}
}

func TestODQBatchMaskLayout(t *testing.T) {
	rng := tensor.NewRNG(5)
	conv := nn.NewConv2D("c", 2, 3, 3, 1, 1, false, rng)
	e := NewExec(0.5, WithMaskRecording())
	conv.Exec = e
	x := tensor.New(3, 2, 6, 6)
	rng.FillUniform(x, 0, 1)
	conv.Forward(x, false)
	p := e.Profiles()[0]
	if int64(len(p.Mask)) != p.TotalOutputs || p.TotalOutputs != 3*3*36 {
		t.Fatalf("batched mask layout wrong: %d bits for %d outputs",
			len(p.Mask), p.TotalOutputs)
	}
}

func TestODQRepeatedCallsAccumulateProfiles(t *testing.T) {
	rng := tensor.NewRNG(6)
	conv := nn.NewConv2D("c", 2, 2, 3, 1, 1, false, rng)
	e := NewExec(0.5, WithProfiling())
	conv.Exec = e
	x := tensor.New(1, 2, 6, 6)
	rng.FillUniform(x, 0, 1)
	conv.Forward(x, false)
	conv.Forward(x, false)
	p := e.Profiles()
	if len(p) != 1 {
		t.Fatalf("same layer must merge, got %d profiles", len(p))
	}
	if p[0].Batch != 2 {
		t.Fatalf("batches must accumulate: %d", p[0].Batch)
	}
	// Determinism: same input twice → sensitive counts double exactly.
	if p[0].SensitiveOutputs%2 != 0 {
		t.Fatal("identical passes must classify identically")
	}
}

func TestSensitiveFractionEmptyProfiler(t *testing.T) {
	e := NewExec(0.5)
	if f := e.SensitiveFraction(); f != 0 {
		t.Fatalf("empty profiler fraction %v", f)
	}
}
