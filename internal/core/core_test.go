package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func testConvAndInput(seed int64) (*nn.Conv2D, *tensor.Tensor) {
	rng := tensor.NewRNG(seed)
	conv := nn.NewConv2D("c", 3, 4, 3, 1, 1, false, rng)
	x := tensor.New(1, 3, 10, 10)
	rng.FillUniform(x, 0, 1)
	return conv, x
}

func TestAllSensitiveEqualsStaticINT4(t *testing.T) {
	conv, x := testConvAndInput(1)
	e := NewExec(-1) // every output clears a negative threshold
	conv.Exec = e
	got := conv.Forward(x, false)
	conv.Exec = quant.NewStaticExec(4)
	want := conv.Forward(x, false)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("all-sensitive ODQ must equal static INT4, diff %v", d)
	}
}

func TestNoneSensitiveIsPredictorOnly(t *testing.T) {
	conv, x := testConvAndInput(2)
	e := NewExec(1e9)
	conv.Exec = e
	got := conv.Forward(x, false)

	// Manually compute the high×high partial with the executor's
	// rounded splits.
	qx := quant.ActCodes(x, 4)
	xh, _ := quant.SplitCodesRounded(qx, 2, false)
	qw := quant.WeightCodes(conv.Weight.W, 4)
	wh, _ := quant.SplitCodesRounded(qw, 2, true)
	acc, g := quant.ConvAccum(xh, wh, 1, 1)
	want := quant.DequantAccum(acc, xh.Scale*wh.Scale, 1, g)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-6 {
		t.Fatalf("insensitive outputs must carry only the predictor term, diff %v", d)
	}
}

func TestSensitiveOutputsAreExact(t *testing.T) {
	conv, x := testConvAndInput(3)
	e := NewExec(0.25, WithMaskRecording())
	conv.Exec = e
	got := conv.Forward(x, false)
	conv.Exec = quant.NewStaticExec(4)
	full := conv.Forward(x, false)

	p := e.Profiles()[0]
	if p.SensitiveOutputs == 0 || p.SensitiveOutputs == p.TotalOutputs {
		t.Fatalf("want a mixed mask, got %d/%d sensitive", p.SensitiveOutputs, p.TotalOutputs)
	}
	for i, sens := range p.Mask {
		if sens {
			if d := math.Abs(float64(got.Data[i] - full.Data[i])); d > 1e-4 {
				t.Fatalf("sensitive output %d deviates from full INT4 by %v", i, d)
			}
		}
	}
}

func TestSensitiveFractionMonotoneInThreshold(t *testing.T) {
	conv, x := testConvAndInput(4)
	fracAt := func(th float32) float64 {
		e := NewExec(th, WithProfiling())
		conv.Exec = e
		conv.Forward(x, false)
		conv.Exec = nil
		return e.SensitiveFraction()
	}
	f0 := fracAt(0)
	f1 := fracAt(0.2)
	f2 := fracAt(0.5)
	f3 := fracAt(5)
	if !(f0 >= f1 && f1 >= f2 && f2 >= f3) {
		t.Fatalf("sensitive fraction must fall with threshold: %v %v %v %v", f0, f1, f2, f3)
	}
	if f3 != 0 {
		t.Fatalf("huge threshold must give zero sensitivity, got %v", f3)
	}
}

func TestMaskRecordedPerOutput(t *testing.T) {
	conv, x := testConvAndInput(5)
	e := NewExec(0.3, WithMaskRecording())
	conv.Exec = e
	conv.Forward(x, false)
	p := e.Profiles()[0]
	if len(p.Mask) != int(p.TotalOutputs) {
		t.Fatalf("mask length %d, want %d", len(p.Mask), p.TotalOutputs)
	}
	var cnt int64
	for _, m := range p.Mask {
		if m {
			cnt++
		}
	}
	if cnt != p.SensitiveOutputs {
		t.Fatalf("mask popcount %d != recorded %d", cnt, p.SensitiveOutputs)
	}
}

func TestPrecisionStatsCollected(t *testing.T) {
	conv, x := testConvAndInput(6)
	e := NewExec(0.3, WithPrecisionCollection())
	conv.Exec = e
	conv.Forward(x, false)
	stats := e.PrecisionStats()
	if len(stats) != 1 {
		t.Fatalf("precision stats count %d", len(stats))
	}
	if stats[0].Count == 0 || stats[0].Mean() < 0 {
		t.Fatalf("bad precision stat %+v", stats[0])
	}
	// ODQ at a moderate threshold must lose less precision than
	// predictor-only execution.
	e2 := NewExec(1e9, WithPrecisionCollection())
	conv.Exec = e2
	conv.Forward(x, false)
	if stats[0].Mean() >= e2.PrecisionStats()[0].Mean() {
		t.Fatal("ODQ must beat predictor-only precision")
	}
	e.ResetPrecision()
	if len(e.PrecisionStats()) != 0 {
		t.Fatal("ResetPrecision must clear")
	}
}

func TestODQOnNetworkTracksStaticINT4(t *testing.T) {
	cfg := models.Config{Classes: 10, Scale: 0.25, Seed: 7}
	net := models.ResNet(20, cfg)
	ds := dataset.SyntheticCIFAR10(16, 8)
	x, _ := ds.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})

	nn.SetConvExec(net, quant.NewStaticExec(4))
	refLogits := net.Forward(x, false)

	e := NewExec(-1) // all sensitive → should match INT4 closely end to end
	nn.SetConvExec(net, e)
	odqLogits := net.Forward(x, false)
	nn.SetConvExec(net, nil)

	if d := tensor.MaxAbsDiff(refLogits, odqLogits); d > 1e-2 {
		t.Fatalf("all-sensitive ODQ logits deviate from INT4 static by %v", d)
	}
}

func TestInitialThresholdPercentiles(t *testing.T) {
	cfg := models.Config{Classes: 10, Scale: 0.25, Seed: 9}
	net := models.ResNet(20, cfg)
	ds := dataset.SyntheticCIFAR10(8, 10)
	x, _ := ds.Batch([]int{0, 1, 2, 3})

	e := NewExec(0.5)
	p50 := e.InitialThreshold(net, x, 0.5)
	p95 := e.InitialThreshold(net, x, 0.95)
	if p95 <= 0 {
		t.Fatalf("p95 threshold = %v", p95)
	}
	if p50 > p95 {
		t.Fatalf("percentiles out of order: p50=%v p95=%v", p50, p95)
	}
	if e.Threshold() != 0.5 {
		t.Fatalf("InitialThreshold must not clobber Threshold, got %v", e.Threshold())
	}
}

func TestFindThresholdHalves(t *testing.T) {
	e := NewExec(0)
	// Mock accuracy: improves as the threshold shrinks; reference 0.9.
	evalAcc := func() float64 {
		return 0.9 - float64(e.Threshold())*0.5
	}
	res := e.FindThreshold(0.8, 0.9, 0.06, 10, nil, evalAcc)
	if !res.Converged {
		t.Fatalf("search did not converge: %+v", res)
	}
	// Needs 0.9-acc <= 0.06 → threshold <= 0.12 → 0.8→0.4→0.2→0.1.
	if res.Iterations != 4 {
		t.Fatalf("iterations = %d, want 4", res.Iterations)
	}
	if math.Abs(float64(res.Threshold)-0.1) > 1e-6 {
		t.Fatalf("threshold = %v, want 0.1", res.Threshold)
	}
	if len(res.Trace) != 4 {
		t.Fatalf("trace length %d", len(res.Trace))
	}
}

func TestFindThresholdGivesUp(t *testing.T) {
	e := NewExec(0)
	res := e.FindThreshold(1, 0.9, 0.001, 3, nil, func() float64 { return 0.1 })
	if res.Converged {
		t.Fatal("impossible target must not converge")
	}
	if res.Iterations != 3 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestFindThresholdRetrainHookRuns(t *testing.T) {
	e := NewExec(0)
	var seen []float32
	retrain := func(th float32) { seen = append(seen, th) }
	e.FindThreshold(0.4, 0.5, 1.0, 5, retrain, func() float64 { return 0.5 })
	if len(seen) != 1 || seen[0] != 0.4 {
		t.Fatalf("retrain calls: %v", seen)
	}
}

func TestLayerThresholdOverride(t *testing.T) {
	conv, x := testConvAndInput(12)
	global := NewExec(0.5, WithProfiling())
	conv.Exec = global
	conv.Forward(x, false)
	baseSens := global.Profiles()[0].SensitiveOutputs

	over := NewExec(0.5, WithLayerThresholds(map[string]float32{"c": 0}), WithProfiling())
	conv.Exec = over
	conv.Forward(x, false)
	p := over.Profiles()[0]
	if p.SensitiveOutputs != p.TotalOutputs {
		t.Fatalf("override to 0 must mark all sensitive, got %d/%d",
			p.SensitiveOutputs, p.TotalOutputs)
	}
	if baseSens == p.TotalOutputs {
		t.Fatal("baseline should have had insensitive outputs for this test to mean anything")
	}

	// Overrides for other layers must not apply.
	other := NewExec(0.5, WithLayerThresholds(map[string]float32{"not-this-layer": 0}), WithProfiling())
	conv.Exec = other
	conv.Forward(x, false)
	if other.Profiles()[0].SensitiveOutputs != baseSens {
		t.Fatal("override keyed to another layer must not change behaviour")
	}
}

func TestGeneralizedBitWidths(t *testing.T) {
	// The paper notes ODQ "can be easily extended to support other types
	// of precision, e.g., INT8". Verify the 8/4 configuration is exact
	// for sensitive outputs too.
	conv, x := testConvAndInput(11)
	e := NewExec(-1, WithBits(8), WithPredBits(4))
	conv.Exec = e
	got := conv.Forward(x, false)
	conv.Exec = quant.NewStaticExec(8)
	want := conv.Forward(x, false)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("INT8 ODQ all-sensitive deviates from INT8 static by %v", d)
	}
}
