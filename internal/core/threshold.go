package core

import (
	"sort"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// InitialThreshold runs the predictor over a calibration batch and returns
// the given percentile of the normalized |predictor partial sum|
// distribution (in units of each layer's mean, i.e. directly usable as a
// Threshold). The paper's adaptive search starts from "a relatively large
// initial threshold chosen based on the output distribution" of each
// layer; we take a network-wide high percentile.
func (e *Exec) InitialThreshold(net nn.Module, calib *tensor.Tensor, percentile float64) float32 {
	e.distMu.Lock()
	e.collectDist = true
	e.dist = nil
	e.distMu.Unlock()

	prev := e.threshold
	e.threshold = 0 // value is irrelevant for distribution collection
	nn.SetConvExecTail(net, e)
	net.Forward(calib, false)
	nn.SetConvExecTail(net, nil)
	e.threshold = prev

	e.distMu.Lock()
	defer e.distMu.Unlock()
	e.collectDist = false
	if len(e.dist) == 0 {
		return 0
	}
	sort.Slice(e.dist, func(i, j int) bool { return e.dist[i] < e.dist[j] })
	idx := int(percentile * float64(len(e.dist)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.dist) {
		idx = len(e.dist) - 1
	}
	v := e.dist[idx]
	e.dist = nil
	return v
}

// SearchResult reports the outcome of the adaptive threshold search.
type SearchResult struct {
	// Threshold is the accepted value (or the last one tried).
	Threshold float32
	// Accuracy is the ODQ accuracy at that threshold.
	Accuracy float64
	// Iterations counts the halving steps performed.
	Iterations int
	// Converged is true if the accuracy criterion was met.
	Converged bool
	// Trace records (threshold, accuracy) for every step.
	Trace []SearchStep
}

// SearchStep is one step of the threshold search.
type SearchStep struct {
	Threshold float32
	Accuracy  float64
}

// FindThreshold performs the paper's adaptive threshold selection: start
// from a large initial value, evaluate ODQ accuracy (optionally after the
// caller's retraining hook runs), and halve until the accuracy is within
// tol of refAcc or maxIters is exhausted. evalAcc must evaluate the model
// with THIS executor installed at the current threshold. retrain may be
// nil.
func (e *Exec) FindThreshold(initial float32, refAcc, tol float64, maxIters int,
	retrain func(threshold float32), evalAcc func() float64) SearchResult {
	res := SearchResult{}
	cur := initial
	for i := 0; i < maxIters; i++ {
		e.threshold = cur
		if retrain != nil {
			retrain(cur)
			e.InvalidateCache()
		}
		acc := evalAcc()
		res.Trace = append(res.Trace, SearchStep{Threshold: cur, Accuracy: acc})
		res.Threshold = cur
		res.Accuracy = acc
		res.Iterations = i + 1
		if refAcc-acc <= tol {
			res.Converged = true
			return res
		}
		cur /= 2
	}
	return res
}
