package core

import (
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// The sparse mask-driven executor must be bit-identical to the dense
// compute-then-select reference for every shape and threshold: sensitive
// outputs carry the full INT-k result, insensitive ones the predictor
// term, with identical float rounding in both paths.

func TestSparseDenseParityRandomized(t *testing.T) {
	shapes := []struct {
		name           string
		inC, outC      int
		h, w           int
		k, stride, pad int
		batch          int
	}{
		{"square", 3, 4, 10, 10, 3, 1, 1, 1},
		{"stride2", 3, 5, 9, 7, 3, 2, 1, 2},
		{"no-pad", 2, 3, 8, 8, 3, 1, 0, 1},
		{"1x1", 4, 4, 5, 5, 1, 1, 0, 1},
		{"odd-channels", 5, 7, 6, 6, 3, 1, 1, 3},
		{"5x5-kernel", 2, 3, 12, 12, 5, 1, 2, 1},
		{"stride3-pad2", 3, 6, 11, 13, 3, 3, 2, 2},
	}
	thresholds := []float32{-1, 0, 0.25, 0.5, 1.0, 1e9}
	seed := int64(100)
	for _, sh := range shapes {
		for _, th := range thresholds {
			seed++
			rng := tensor.NewRNG(seed)
			conv := nn.NewConv2D("c", sh.inC, sh.outC, sh.k, sh.stride, sh.pad, false, rng)
			x := tensor.New(sh.batch, sh.inC, sh.h, sh.w)
			rng.FillUniform(x, 0, 1)

			conv.Exec = NewExec(th)
			sparse := conv.Forward(x, false)
			conv.Exec = NewExec(th, WithDenseReference())
			dense := conv.Forward(x, false)
			conv.Exec = nil

			if len(sparse.Data) != len(dense.Data) {
				t.Fatalf("%s th=%v: length %d vs %d", sh.name, th, len(sparse.Data), len(dense.Data))
			}
			for i := range sparse.Data {
				if sparse.Data[i] != dense.Data[i] {
					t.Fatalf("%s th=%v: output %d differs: sparse %v dense %v",
						sh.name, th, i, sparse.Data[i], dense.Data[i])
				}
			}
		}
	}
}

func TestSparseSerialParallelParity(t *testing.T) {
	rng := tensor.NewRNG(41)
	conv := nn.NewConv2D("c", 4, 8, 3, 1, 1, false, rng)
	x := tensor.New(2, 4, 16, 16)
	rng.FillUniform(x, 0, 1)

	conv.Exec = NewExec(0.4, WithWorkers(1))
	serial := conv.Forward(x, false)
	conv.Exec = NewExec(0.4)
	parallel := conv.Forward(x, false)
	conv.Exec = nil
	for i := range serial.Data {
		if serial.Data[i] != parallel.Data[i] {
			t.Fatalf("output %d differs between serial and parallel: %v vs %v",
				i, serial.Data[i], parallel.Data[i])
		}
	}
}

func TestSparseMatchesStaticWhenAllSensitive(t *testing.T) {
	// End-to-end cross-check against an independent implementation: at
	// threshold -1 the sparse path must reproduce the full INT4 conv.
	rng := tensor.NewRNG(42)
	conv := nn.NewConv2D("c", 3, 6, 3, 2, 1, false, rng)
	x := tensor.New(2, 3, 9, 9)
	rng.FillUniform(x, 0, 1)
	conv.Exec = NewExec(-1)
	got := conv.Forward(x, false)
	conv.Exec = quant.NewStaticExec(4)
	want := conv.Forward(x, false)
	conv.Exec = nil
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("all-sensitive sparse ODQ deviates from static INT4 by %v", d)
	}
}

// TestConcurrentConvSharedExec drives one Exec from many goroutines (run
// under -race via make verify). It exercises the weight cache, profiler
// and scratch pools concurrently, interleaved with cache invalidation.
func TestConcurrentConvSharedExec(t *testing.T) {
	rng := tensor.NewRNG(43)
	conv := nn.NewConv2D("c", 3, 4, 3, 1, 1, false, rng)
	x := tensor.New(1, 3, 10, 10)
	rng.FillUniform(x, 0, 1)

	e := NewExec(0.4, WithMaskRecording())
	want := e.Conv(x, conv)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				got := e.Conv(x, conv)
				for i := range got.Data {
					if got.Data[i] != want.Data[i] {
						t.Errorf("worker %d iter %d: output %d differs", w, iter, i)
						return
					}
				}
			}
		}(w)
	}
	// Concurrent invalidation must not corrupt results (weights are not
	// mutated here, so outputs stay identical regardless of interleaving).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			e.InvalidateCache()
		}
	}()
	wg.Wait()
}

// TestInvalidateCacheGeneration pins the bugfix: a weight-code computation
// that straddles InvalidateCache must not re-populate the cache with codes
// from the stale weights.
func TestInvalidateCacheGeneration(t *testing.T) {
	rng := tensor.NewRNG(44)
	conv := nn.NewConv2D("c", 1, 1, 3, 1, 1, false, rng)
	x := tensor.New(1, 1, 6, 6)
	rng.FillUniform(x, 0, 1)

	e := NewExec(-1)
	out1 := e.Conv(x, conv)
	conv.Weight.W.Scale(2)
	e.InvalidateCache()
	out2 := e.Conv(x, conv)
	if tensor.MaxAbsDiff(out1, out2) == 0 {
		t.Fatal("invalidation must pick up the rescaled weights")
	}
	// A second call must agree with the post-invalidation result (cache
	// now holds the fresh codes).
	out3 := e.Conv(x, conv)
	if tensor.MaxAbsDiff(out2, out3) != 0 {
		t.Fatal("post-invalidation cache must be stable")
	}
}
